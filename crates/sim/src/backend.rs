//! Pluggable memory backends: the access + control-op surface experiments drive.
//!
//! The experiment runners in `ccache-core` replay traces against *some* memory system and
//! reprogram it between phases. [`MemoryBackend`] abstracts that surface so the same
//! runner code can drive:
//!
//! * [`MemorySystem`] — the paper's column cache (the default);
//! * [`SetAssocBaseline`] — the same hardware with the column-mapping control interface
//!   disconnected, i.e. a conventional set-associative cache;
//! * [`IdealScratchpad`] — every reference served at scratchpad latency, the lower bound
//!   an on-chip memory of unlimited capacity would achieve.
//!
//! The trait is object-safe: runners hold `Box<dyn MemoryBackend>` and sweep points clone
//! a configured backend via [`MemoryBackend::boxed_clone`] instead of rebuilding and
//! reprogramming one from scratch.

use crate::error::SimError;
use crate::mask::ColumnMask;
use crate::stats::{BatchMemoStats, CacheStats, CycleReport, MemoryStats};
use crate::system::{MemorySystem, SystemConfig};
use crate::tint::Tint;
use std::ops::Range;

/// The access datapath and software control surface of a simulated memory system.
///
/// Cycle accounting and statistics follow [`MemorySystem`]'s conventions: `access`
/// returns the cycles of one reference, control operations accumulate into
/// [`MemoryBackend::control_cycles`], and [`MemoryBackend::reset_stats`] clears counters
/// without touching contents or mappings.
///
/// # Example: build a backend, program tints, replay, read stats
///
/// ```
/// use ccache_sim::backend::{build_backend, BackendKind};
/// use ccache_sim::{ColumnMask, SystemConfig, Tint};
///
/// let mut backend = build_backend(BackendKind::ColumnCache, SystemConfig::default())?;
///
/// // Program tints: give a hot 2 KiB region its own column.
/// backend.define_tint(Tint(1), ColumnMask::single(0))?;
/// backend.tint_range(0x1000..0x1800, Tint(1));
///
/// // Replay a reference stream and read the statistics.
/// let refs: Vec<(u64, bool)> = (0..64u64).map(|i| (0x1000 + i * 32, false)).collect();
/// let cycles = backend.run_batch(&refs);
/// assert!(cycles > 0);
/// assert_eq!(backend.stats().references, 64);
/// assert!(backend.cache_stats().misses > 0);
/// # Ok::<(), ccache_sim::SimError>(())
/// ```
pub trait MemoryBackend: Send + Sync {
    /// A short stable identifier (`"column-cache"`, `"set-assoc"`, `"ideal-scratchpad"`).
    fn name(&self) -> &'static str;

    /// The configuration the backend was built from.
    fn config(&self) -> &SystemConfig;

    /// Replays one memory reference and returns the cycles it took.
    fn access(&mut self, addr: u64, is_write: bool) -> u64;

    /// Replays a slice of references and returns the total cycles. Implementations may
    /// batch internally (e.g. short-circuit same-page translations) but must produce
    /// statistics identical to per-reference [`MemoryBackend::access`] calls.
    fn run_batch(&mut self, refs: &[(u64, bool)]) -> u64 {
        refs.iter().map(|&(a, w)| self.access(a, w)).sum()
    }

    /// Defines (or redefines) the column mask of a tint.
    fn define_tint(&mut self, tint: Tint, mask: ColumnMask) -> Result<(), SimError>;

    /// Gives `tint` exclusive use of the columns in `mask`; returns tints that kept a
    /// column they would otherwise have lost.
    fn make_tint_exclusive(&mut self, tint: Tint, mask: ColumnMask) -> Result<Vec<Tint>, SimError>;

    /// Assigns `tint` to every page overlapping `range`; returns the pages changed.
    fn tint_range(&mut self, range: Range<u64>, tint: Tint) -> usize;

    /// Marks pages overlapping `range` (un)cacheable; returns the pages changed.
    fn set_cacheable(&mut self, range: Range<u64>, cacheable: bool) -> usize;

    /// Maps `[base, base + size)` exclusively to `mask` under `tint`, optionally
    /// pre-loading it (scratchpad emulation). Returns the tint used.
    fn map_exclusive_region(
        &mut self,
        base: u64,
        size: u64,
        mask: ColumnMask,
        tint: Tint,
        preload: bool,
    ) -> Result<Tint, SimError>;

    /// Memory-system statistics accumulated since the last reset.
    fn stats(&self) -> &MemoryStats;

    /// Cache statistics accumulated since the last reset.
    fn cache_stats(&self) -> &CacheStats;

    /// Batch-replay memo counters ([`MemoryBackend::run_batch`] short-circuits)
    /// accumulated since the last reset. Informational — not architectural state.
    /// Backends without a batched fast path report zeros.
    fn memo_stats(&self) -> BatchMemoStats {
        BatchMemoStats::default()
    }

    /// Cycles spent in software control operations since the last reset.
    fn control_cycles(&self) -> u64;

    /// Cycle/CPI report for everything replayed since the last reset.
    fn cycle_report(&self, include_control: bool) -> CycleReport;

    /// Clears statistics; contents and mappings survive.
    fn reset_stats(&mut self);

    /// Returns the backend to its just-constructed state: contents, mappings and
    /// statistics are all cleared.
    fn full_reset(&mut self);

    /// Clones the backend — contents, mappings, statistics and all — behind a fresh box.
    /// This is the snapshot primitive of the replay engine.
    fn boxed_clone(&self) -> Box<dyn MemoryBackend>;
}

impl MemoryBackend for MemorySystem {
    fn name(&self) -> &'static str {
        "column-cache"
    }

    fn config(&self) -> &SystemConfig {
        MemorySystem::config(self)
    }

    fn access(&mut self, addr: u64, is_write: bool) -> u64 {
        MemorySystem::access(self, addr, is_write)
    }

    fn run_batch(&mut self, refs: &[(u64, bool)]) -> u64 {
        MemorySystem::run_batch(self, refs)
    }

    fn define_tint(&mut self, tint: Tint, mask: ColumnMask) -> Result<(), SimError> {
        MemorySystem::define_tint(self, tint, mask)
    }

    fn make_tint_exclusive(&mut self, tint: Tint, mask: ColumnMask) -> Result<Vec<Tint>, SimError> {
        MemorySystem::make_tint_exclusive(self, tint, mask)
    }

    fn tint_range(&mut self, range: Range<u64>, tint: Tint) -> usize {
        MemorySystem::tint_range(self, range, tint)
    }

    fn set_cacheable(&mut self, range: Range<u64>, cacheable: bool) -> usize {
        MemorySystem::set_cacheable(self, range, cacheable)
    }

    fn map_exclusive_region(
        &mut self,
        base: u64,
        size: u64,
        mask: ColumnMask,
        tint: Tint,
        preload: bool,
    ) -> Result<Tint, SimError> {
        MemorySystem::map_exclusive_region(self, base, size, mask, tint, preload)
    }

    fn stats(&self) -> &MemoryStats {
        MemorySystem::stats(self)
    }

    fn cache_stats(&self) -> &CacheStats {
        MemorySystem::cache_stats(self)
    }

    fn memo_stats(&self) -> BatchMemoStats {
        MemorySystem::memo_stats(self)
    }

    fn control_cycles(&self) -> u64 {
        self.control_cycles
    }

    fn cycle_report(&self, include_control: bool) -> CycleReport {
        MemorySystem::cycle_report(self, include_control)
    }

    fn reset_stats(&mut self) {
        MemorySystem::reset_stats(self)
    }

    fn full_reset(&mut self) {
        MemorySystem::full_reset(self)
    }

    fn boxed_clone(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

/// A conventional set-associative cache: the column-cache datapath with the mapping
/// control surface disconnected.
///
/// Every tint-related control operation is accepted and ignored, so every access replaces
/// into the full set — exactly the "standard cache" baseline of the paper's figures.
/// Cacheability control is kept: uncacheable regions are ordinary hardware, not part of
/// the column-mapping mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct SetAssocBaseline {
    inner: MemorySystem,
}

impl SetAssocBaseline {
    /// Creates a baseline cache from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SystemConfig) -> Result<Self, SimError> {
        Ok(SetAssocBaseline {
            inner: MemorySystem::new(config)?,
        })
    }

    /// Read-only view of the wrapped memory system.
    pub fn inner(&self) -> &MemorySystem {
        &self.inner
    }
}

impl MemoryBackend for SetAssocBaseline {
    fn name(&self) -> &'static str {
        "set-assoc"
    }

    fn config(&self) -> &SystemConfig {
        MemorySystem::config(&self.inner)
    }

    fn access(&mut self, addr: u64, is_write: bool) -> u64 {
        self.inner.access(addr, is_write)
    }

    fn run_batch(&mut self, refs: &[(u64, bool)]) -> u64 {
        self.inner.run_batch(refs)
    }

    fn define_tint(&mut self, _tint: Tint, _mask: ColumnMask) -> Result<(), SimError> {
        Ok(())
    }

    fn make_tint_exclusive(
        &mut self,
        _tint: Tint,
        _mask: ColumnMask,
    ) -> Result<Vec<Tint>, SimError> {
        Ok(Vec::new())
    }

    fn tint_range(&mut self, _range: Range<u64>, _tint: Tint) -> usize {
        0
    }

    fn set_cacheable(&mut self, range: Range<u64>, cacheable: bool) -> usize {
        self.inner.set_cacheable(range, cacheable)
    }

    fn map_exclusive_region(
        &mut self,
        _base: u64,
        _size: u64,
        _mask: ColumnMask,
        tint: Tint,
        _preload: bool,
    ) -> Result<Tint, SimError> {
        // A conventional cache cannot dedicate columns; the region simply competes for
        // the whole cache like everything else.
        Ok(tint)
    }

    fn stats(&self) -> &MemoryStats {
        self.inner.stats()
    }

    fn cache_stats(&self) -> &CacheStats {
        self.inner.cache_stats()
    }

    fn memo_stats(&self) -> BatchMemoStats {
        self.inner.memo_stats()
    }

    fn control_cycles(&self) -> u64 {
        self.inner.control_cycles
    }

    fn cycle_report(&self, include_control: bool) -> CycleReport {
        self.inner.cycle_report(include_control)
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn full_reset(&mut self) {
        self.inner.full_reset()
    }

    fn boxed_clone(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

/// An idealised on-chip memory: every reference is served at scratchpad latency.
///
/// No real partition can beat it, which makes it the normalising lower bound for sweep
/// plots. Statistics count every access as a scratchpad access; the cache counters stay
/// zero.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealScratchpad {
    config: SystemConfig,
    stats: MemoryStats,
    cache_stats: CacheStats,
    control_cycles: u64,
}

impl IdealScratchpad {
    /// Creates an ideal scratchpad with the given configuration (only the latency model
    /// and instruction mix are used).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SystemConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(IdealScratchpad {
            config,
            stats: MemoryStats::default(),
            cache_stats: CacheStats::new(config.cache.columns()),
            control_cycles: 0,
        })
    }
}

impl MemoryBackend for IdealScratchpad {
    fn name(&self) -> &'static str {
        "ideal-scratchpad"
    }

    fn config(&self) -> &SystemConfig {
        &self.config
    }

    fn access(&mut self, _addr: u64, _is_write: bool) -> u64 {
        let cycles = self.config.latency.scratchpad_latency;
        self.stats.references += 1;
        self.stats.scratchpad_accesses += 1;
        self.stats.memory_cycles += cycles;
        cycles
    }

    fn run_batch(&mut self, refs: &[(u64, bool)]) -> u64 {
        let cycles = self.config.latency.scratchpad_latency;
        let n = refs.len() as u64;
        self.stats.references += n;
        self.stats.scratchpad_accesses += n;
        self.stats.memory_cycles += cycles * n;
        cycles * n
    }

    fn define_tint(&mut self, _tint: Tint, _mask: ColumnMask) -> Result<(), SimError> {
        Ok(())
    }

    fn make_tint_exclusive(
        &mut self,
        _tint: Tint,
        _mask: ColumnMask,
    ) -> Result<Vec<Tint>, SimError> {
        Ok(Vec::new())
    }

    fn tint_range(&mut self, _range: Range<u64>, _tint: Tint) -> usize {
        0
    }

    fn set_cacheable(&mut self, _range: Range<u64>, _cacheable: bool) -> usize {
        0
    }

    fn map_exclusive_region(
        &mut self,
        _base: u64,
        _size: u64,
        _mask: ColumnMask,
        tint: Tint,
        _preload: bool,
    ) -> Result<Tint, SimError> {
        Ok(tint)
    }

    fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    fn cache_stats(&self) -> &CacheStats {
        &self.cache_stats
    }

    fn control_cycles(&self) -> u64 {
        self.control_cycles
    }

    fn cycle_report(&self, include_control: bool) -> CycleReport {
        CycleReport::from_stats(
            &self.stats,
            &self.config.latency,
            self.control_cycles,
            include_control,
        )
    }

    fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
        self.cache_stats = CacheStats::new(self.config.cache.columns());
        self.control_cycles = 0;
    }

    fn full_reset(&mut self) {
        self.reset_stats();
    }

    fn boxed_clone(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }
}

/// The backends experiments can request by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The software-controlled column cache ([`MemorySystem`]).
    #[default]
    ColumnCache,
    /// A conventional set-associative cache ([`SetAssocBaseline`]).
    SetAssociative,
    /// The ideal lower bound ([`IdealScratchpad`]).
    IdealScratchpad,
}

impl BackendKind {
    /// Every kind, for sweeps over backends.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::ColumnCache,
        BackendKind::SetAssociative,
        BackendKind::IdealScratchpad,
    ];

    /// The canonical name: what [`std::fmt::Display`] prints and what artefacts spell.
    pub const fn canonical_name(self) -> &'static str {
        match self {
            BackendKind::ColumnCache => "column-cache",
            BackendKind::SetAssociative => "set-assoc",
            BackendKind::IdealScratchpad => "ideal-scratchpad",
        }
    }

    /// The short command-line name shown in `expected ...` lists.
    pub const fn short_name(self) -> &'static str {
        match self {
            BackendKind::ColumnCache => "column",
            BackendKind::SetAssociative => "set-assoc",
            BackendKind::IdealScratchpad => "ideal",
        }
    }

    /// Additional accepted spellings (canonical and short names excluded).
    pub const fn alias_names(self) -> &'static [&'static str] {
        match self {
            BackendKind::ColumnCache => &[],
            BackendKind::SetAssociative => &["setassoc", "baseline"],
            BackendKind::IdealScratchpad => &[],
        }
    }

    /// A one-line description, surfaced by the registry.
    pub const fn summary(self) -> &'static str {
        match self {
            BackendKind::ColumnCache => "the software-controlled column cache",
            BackendKind::SetAssociative => "a conventional set-associative cache",
            BackendKind::IdealScratchpad => "every reference at scratchpad latency",
        }
    }

    /// Parses a backend name as used on experiment command lines.
    ///
    /// Resolution goes through the shared [`BackendRegistry`](crate::BackendRegistry),
    /// so the accepted spellings cannot drift from what the CLI and the experiment
    /// specs accept.
    pub fn parse(s: &str) -> Option<BackendKind> {
        crate::registry::BackendRegistry::global().kind_of(s)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.canonical_name())
    }
}

/// Builds a boxed backend of the requested kind.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn build_backend(
    kind: BackendKind,
    config: SystemConfig,
) -> Result<Box<dyn MemoryBackend>, SimError> {
    Ok(match kind {
        BackendKind::ColumnCache => Box::new(MemorySystem::new(config)?),
        BackendKind::SetAssociative => Box::new(SetAssocBaseline::new(config)?),
        BackendKind::IdealScratchpad => Box::new(IdealScratchpad::new(config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(n: u64) -> Vec<(u64, bool)> {
        (0..n).map(|i| (i * 64, i % 3 == 0)).collect()
    }

    #[test]
    fn column_backend_matches_direct_memory_system() {
        let cfg = SystemConfig::default();
        let mut direct = MemorySystem::new(cfg).unwrap();
        let mut boxed = build_backend(BackendKind::ColumnCache, cfg).unwrap();
        let r = refs(500);
        let direct_cycles: u64 = r.iter().map(|&(a, w)| direct.access(a, w)).sum();
        let boxed_cycles = boxed.run_batch(&r);
        assert_eq!(direct_cycles, boxed_cycles);
        assert_eq!(direct.stats(), boxed.stats());
        assert_eq!(direct.cache_stats(), boxed.cache_stats());
    }

    #[test]
    fn baseline_ignores_tint_control() {
        let cfg = SystemConfig::default();
        let mut baseline = SetAssocBaseline::new(cfg).unwrap();
        baseline
            .define_tint(Tint(1), ColumnMask::single(0))
            .unwrap();
        assert_eq!(baseline.tint_range(0..4096, Tint(1)), 0);
        // fills still use every column
        for i in 0..4u64 {
            baseline.access(i * 2048, false);
        }
        let occupied = (0..4)
            .filter(|&c| baseline.inner().cache().occupancy(c).unwrap() > 0)
            .count();
        assert_eq!(occupied, 4);
        assert_eq!(baseline.control_cycles(), 0);
    }

    #[test]
    fn ideal_scratchpad_is_a_lower_bound() {
        let cfg = SystemConfig::default();
        let mut ideal = IdealScratchpad::new(cfg).unwrap();
        let mut column = MemorySystem::new(cfg).unwrap();
        let r = refs(200);
        let ideal_cycles = ideal.run_batch(&r);
        let column_cycles = column.run_batch(&r);
        assert!(ideal_cycles <= column_cycles);
        assert_eq!(ideal.stats().references, 200);
        assert_eq!(ideal.stats().scratchpad_accesses, 200);
        assert_eq!(ideal.cache_stats().accesses, 0);
        assert_eq!(
            ideal.cycle_report(false).memory_cycles,
            200 * cfg.latency.scratchpad_latency
        );
    }

    #[test]
    fn boxed_clone_snapshots_contents_and_stats() {
        let cfg = SystemConfig::default();
        let mut backend = build_backend(BackendKind::ColumnCache, cfg).unwrap();
        backend.define_tint(Tint(1), ColumnMask::single(2)).unwrap();
        backend.tint_range(0..2048, Tint(1));
        backend.run_batch(&refs(100));
        let mut snap = backend.boxed_clone();
        assert_eq!(snap.stats(), backend.stats());
        // the clone evolves independently
        snap.run_batch(&refs(50));
        assert_ne!(snap.stats().references, backend.stats().references);
    }

    #[test]
    fn full_reset_restores_pristine_state() {
        let cfg = SystemConfig::default();
        let mut backend = build_backend(BackendKind::ColumnCache, cfg).unwrap();
        backend.define_tint(Tint(1), ColumnMask::single(0)).unwrap();
        backend.tint_range(0..8192, Tint(1));
        backend.run_batch(&refs(300));
        backend.full_reset();
        let fresh = build_backend(BackendKind::ColumnCache, cfg).unwrap();
        assert_eq!(backend.stats(), fresh.stats());
        assert_eq!(backend.cache_stats(), fresh.cache_stats());
        assert_eq!(backend.control_cycles(), 0);
    }

    #[test]
    fn kinds_parse_and_display() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(BackendKind::parse("column"), Some(BackendKind::ColumnCache));
        assert_eq!(BackendKind::parse("bogus"), None);
        assert_eq!(BackendKind::default(), BackendKind::ColumnCache);
    }
}
