//! Tints: the level of indirection between pages and column bit-vectors.
//!
//! Pages are mapped to a *tint* rather than directly to a column bit-vector (Section 2.2).
//! The [`TintTable`] maps each tint to a [`ColumnMask`]; remapping a tint is a single table
//! write and takes effect on the next miss, whereas re-tinting a page requires a page-table
//! update and a TLB flush for that page. This module models the table; the cost distinction
//! is modelled by [`crate::system::MemorySystem`].

use crate::error::SimError;
use crate::mask::ColumnMask;
use std::collections::BTreeMap;
use std::fmt;

/// A named virtual grouping of address regions (the paper's "red", "blue", ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tint(pub u32);

impl Tint {
    /// The default tint every page starts with; maps to all columns unless remapped.
    pub const DEFAULT: Tint = Tint(0);
}

impl fmt::Display for Tint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tint{}", self.0)
    }
}

impl From<u32> for Tint {
    fn from(value: u32) -> Self {
        Tint(value)
    }
}

/// The tint → column-bit-vector table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TintTable {
    columns: usize,
    map: BTreeMap<Tint, ColumnMask>,
    /// Number of tint remappings performed (each is a cheap table write).
    pub remaps: u64,
}

impl TintTable {
    /// Creates a table for a `columns`-column cache with [`Tint::DEFAULT`] mapped to every
    /// column (so an unconfigured system behaves exactly like a normal cache).
    pub fn new(columns: usize) -> Self {
        let mut map = BTreeMap::new();
        map.insert(Tint::DEFAULT, ColumnMask::all(columns));
        TintTable {
            columns,
            map,
            remaps: 0,
        }
    }

    /// Number of columns the masks are validated against.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Returns the table to its just-constructed state: only [`Tint::DEFAULT`] mapped to
    /// every column, remap counter zeroed. This is the tint-table rewrite entry point the
    /// pooled fitness datapath uses between candidates — a recycled engine starts from a
    /// pristine table before the next candidate's mapping is applied.
    pub fn reset(&mut self) {
        self.map.clear();
        self.map
            .insert(Tint::DEFAULT, ColumnMask::all(self.columns));
        self.remaps = 0;
    }

    /// Defines or redefines the mask of a tint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyMask`] or [`SimError::ColumnOutOfRange`] if the mask is not
    /// valid for this cache.
    pub fn define(&mut self, tint: Tint, mask: ColumnMask) -> Result<(), SimError> {
        mask.validate(self.columns)?;
        self.map.insert(tint, mask);
        self.remaps += 1;
        Ok(())
    }

    /// Returns the mask of `tint`, if defined.
    pub fn mask_of(&self, tint: Tint) -> Option<ColumnMask> {
        self.map.get(&tint).copied()
    }

    /// Returns the mask of `tint`, falling back to the default tint's mask for unknown
    /// tints (hardware would treat an unknown tint as "anywhere").
    pub fn mask_or_default(&self, tint: Tint) -> ColumnMask {
        self.mask_of(tint)
            .or_else(|| self.mask_of(Tint::DEFAULT))
            .unwrap_or_else(|| ColumnMask::all(self.columns))
    }

    /// Returns the mask of `tint` or an error naming the missing tint.
    pub fn try_mask_of(&self, tint: Tint) -> Result<ColumnMask, SimError> {
        self.mask_of(tint)
            .ok_or(SimError::UnknownTint { tint: tint.0 })
    }

    /// Number of tints defined (including the default tint).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The table always contains at least the default tint.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(tint, mask)` pairs in tint order.
    pub fn iter(&self) -> impl Iterator<Item = (Tint, ColumnMask)> + '_ {
        self.map.iter().map(|(t, m)| (*t, *m))
    }

    /// Removes every column in `mask` from every *other* tint's mask, leaving at least one
    /// column per tint. This is the bookkeeping the paper's Figure 3 example performs when
    /// a column is given exclusively to a new tint: the default tint (and any other tint)
    /// must stop replacing into it.
    ///
    /// Tints whose mask would become empty are left unchanged and reported back.
    pub fn make_exclusive(&mut self, owner: Tint, mask: ColumnMask) -> Result<Vec<Tint>, SimError> {
        mask.validate(self.columns)?;
        self.map.insert(owner, mask);
        self.remaps += 1;
        let mut skipped = Vec::new();
        let keys: Vec<Tint> = self.map.keys().copied().collect();
        for t in keys {
            if t == owner {
                continue;
            }
            let cur = self.map[&t];
            let reduced = cur & !mask;
            if reduced.is_empty() {
                skipped.push(t);
            } else if reduced != cur {
                self.map.insert(t, reduced);
                self.remaps += 1;
            }
        }
        Ok(skipped)
    }
}

impl Default for TintTable {
    fn default() -> Self {
        TintTable::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tint_maps_to_all_columns() {
        let t = TintTable::new(4);
        assert_eq!(t.mask_of(Tint::DEFAULT), Some(ColumnMask::all(4)));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.columns(), 4);
    }

    #[test]
    fn define_validates_masks() {
        let mut t = TintTable::new(4);
        assert!(t.define(Tint(1), ColumnMask::single(2)).is_ok());
        assert_eq!(t.mask_of(Tint(1)), Some(ColumnMask::single(2)));
        assert_eq!(
            t.define(Tint(2), ColumnMask::EMPTY),
            Err(SimError::EmptyMask)
        );
        assert!(matches!(
            t.define(Tint(2), ColumnMask::single(7)),
            Err(SimError::ColumnOutOfRange { .. })
        ));
        assert_eq!(t.remaps, 1);
    }

    #[test]
    fn unknown_tints_fall_back_to_default() {
        let mut t = TintTable::new(4);
        assert_eq!(t.mask_or_default(Tint(9)), ColumnMask::all(4));
        assert!(t.try_mask_of(Tint(9)).is_err());
        // and the fallback follows the default tint if it is remapped
        t.define(Tint::DEFAULT, ColumnMask::from_columns([0, 1]))
            .unwrap();
        assert_eq!(t.mask_or_default(Tint(9)), ColumnMask::from_columns([0, 1]));
    }

    #[test]
    fn make_exclusive_carves_out_columns() {
        // Reproduces the Figure 3 example: page gets its own column (blue), red loses it.
        let mut t = TintTable::new(4);
        let blue = Tint(1);
        let skipped = t.make_exclusive(blue, ColumnMask::single(1)).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(t.mask_of(blue), Some(ColumnMask::single(1)));
        assert_eq!(
            t.mask_of(Tint::DEFAULT),
            Some(ColumnMask::from_columns([0, 2, 3]))
        );
    }

    #[test]
    fn make_exclusive_never_empties_other_tints() {
        let mut t = TintTable::new(2);
        t.define(Tint(1), ColumnMask::single(0)).unwrap();
        // giving tint 2 both columns would empty tint 1 and the default tint
        let skipped = t.make_exclusive(Tint(2), ColumnMask::all(2)).unwrap();
        assert!(skipped.contains(&Tint(1)));
        assert!(skipped.contains(&Tint::DEFAULT));
        assert_eq!(t.mask_of(Tint(1)), Some(ColumnMask::single(0)));
    }

    #[test]
    fn reset_restores_the_default_only_table() {
        let mut t = TintTable::new(4);
        t.define(Tint(1), ColumnMask::single(2)).unwrap();
        t.make_exclusive(Tint(2), ColumnMask::single(0)).unwrap();
        t.reset();
        assert_eq!(t, TintTable::new(4));
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Tint::from(3u32).to_string(), "tint3");
        assert_eq!(Tint::DEFAULT, Tint(0));
    }

    #[test]
    fn iter_lists_all_tints() {
        let mut t = TintTable::new(4);
        t.define(Tint(5), ColumnMask::single(0)).unwrap();
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, Tint::DEFAULT);
        assert_eq!(v[1].0, Tint(5));
    }
}
