//! The backend registry: one name→factory table behind every backend-name decision.
//!
//! Before this module existed, the accepted backend names lived in three places — the
//! CLI's `expected ...` error strings, the experiment-spec JSON grammar and
//! [`BackendKind::parse`] — and could drift apart silently. [`BackendRegistry`] is the
//! single source of truth: the built-in backends (column cache, set-associative
//! baseline, ideal scratchpad) are registered by default with their canonical names,
//! CLI short names and historical aliases, and every parse site resolves through it.
//! The `expected ...` lists shown in usage errors are **derived** from the registry
//! ([`BackendRegistry::expected_single`] / [`BackendRegistry::expected_list`]), so a
//! newly registered backend shows up in the error messages without any string edits.
//!
//! User code can register additional backends (a victim cache, a trace-driven DRAM
//! model, ...) on its own registry instance and build them by name:
//!
//! ```
//! use ccache_sim::backend::{IdealScratchpad, MemoryBackend};
//! use ccache_sim::registry::BackendRegistry;
//! use ccache_sim::SystemConfig;
//!
//! let mut registry = BackendRegistry::builtin();
//! registry.register("twice-ideal", &["2x"], "an ideal scratchpad, registered twice", |cfg| {
//!     Ok(Box::new(IdealScratchpad::new(cfg)?))
//! })?;
//! let mut backend = registry.build("2x", SystemConfig::default())?;
//! assert_eq!(backend.name(), "ideal-scratchpad");
//! assert!(registry.expected_single().contains("twice-ideal"));
//! # Ok::<(), ccache_sim::SimError>(())
//! ```

use crate::backend::{build_backend, BackendKind, MemoryBackend};
use crate::error::SimError;
use crate::system::SystemConfig;
use std::sync::{Arc, OnceLock};

/// A factory producing a fresh, boxed backend from a system configuration.
pub type BackendFactory =
    Arc<dyn Fn(SystemConfig) -> Result<Box<dyn MemoryBackend>, SimError> + Send + Sync>;

/// One registered backend: its names and its factory.
#[derive(Clone)]
pub struct BackendEntry {
    /// The canonical name (what [`std::fmt::Display`] on [`BackendKind`] prints and
    /// what job descriptors/artefacts spell), e.g. `"column-cache"`.
    name: String,
    /// The short command-line name shown in `expected ...` lists, e.g. `"column"`.
    short: String,
    /// Additional accepted spellings, e.g. `"setassoc"`.
    aliases: Vec<String>,
    /// A one-line human description.
    summary: String,
    /// The closed-enum kind, for the built-in backends only.
    kind: Option<BackendKind>,
    /// The constructor.
    factory: BackendFactory,
}

impl BackendEntry {
    /// The canonical name of the backend.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The short command-line name (shown in `expected ...` lists).
    pub fn short(&self) -> &str {
        &self.short
    }

    /// The accepted alias spellings (canonical and short names excluded).
    pub fn aliases(&self) -> &[String] {
        &self.aliases
    }

    /// The one-line description.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The [`BackendKind`] of a built-in backend; `None` for user-registered ones.
    pub fn kind(&self) -> Option<BackendKind> {
        self.kind
    }

    /// Builds a fresh backend from this entry.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the factory.
    pub fn build(&self, config: SystemConfig) -> Result<Box<dyn MemoryBackend>, SimError> {
        (self.factory)(config)
    }

    /// Whether `name` spells this entry (canonical, short or alias).
    fn matches(&self, name: &str) -> bool {
        self.name == name || self.short == name || self.aliases.iter().any(|a| a == name)
    }
}

impl std::fmt::Debug for BackendEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendEntry")
            .field("name", &self.name)
            .field("short", &self.short)
            .field("aliases", &self.aliases)
            .field("kind", &self.kind)
            .finish()
    }
}

/// A name→factory registry of memory backends, in registration order.
///
/// Cloning a registry is cheap (factories are shared behind [`Arc`]); the
/// [`Session`](https://docs.rs/column-caching) facade clones the built-in registry and
/// lets callers register their own backends without affecting other sessions.
#[derive(Clone, Debug, Default)]
pub struct BackendRegistry {
    entries: Vec<BackendEntry>,
}

impl BackendRegistry {
    /// An empty registry (no backends registered).
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// A registry holding the built-in backends, in [`BackendKind::ALL`] order.
    pub fn builtin() -> Self {
        let mut registry = BackendRegistry::empty();
        for kind in BackendKind::ALL {
            registry
                .register_entry(BackendEntry {
                    name: kind.canonical_name().to_owned(),
                    short: kind.short_name().to_owned(),
                    aliases: kind.alias_names().iter().map(|&a| a.to_owned()).collect(),
                    summary: kind.summary().to_owned(),
                    kind: Some(kind),
                    factory: Arc::new(move |config| build_backend(kind, config)),
                })
                .expect("built-in backend names are distinct");
        }
        registry
    }

    /// The process-wide shared built-in registry — the table [`BackendKind::parse`] and
    /// every built-in parse site (CLI flags, experiment specs) resolve through.
    pub fn global() -> &'static BackendRegistry {
        static GLOBAL: OnceLock<BackendRegistry> = OnceLock::new();
        GLOBAL.get_or_init(BackendRegistry::builtin)
    }

    /// Registers a user backend under `name` (plus `aliases`).
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::DuplicateBackend`] if any of the names is already taken.
    pub fn register<F>(
        &mut self,
        name: &str,
        aliases: &[&str],
        summary: &str,
        factory: F,
    ) -> Result<(), SimError>
    where
        F: Fn(SystemConfig) -> Result<Box<dyn MemoryBackend>, SimError> + Send + Sync + 'static,
    {
        self.register_entry(BackendEntry {
            name: name.to_owned(),
            short: name.to_owned(),
            aliases: aliases.iter().map(|&a| a.to_owned()).collect(),
            summary: summary.to_owned(),
            kind: None,
            factory: Arc::new(factory),
        })
    }

    fn register_entry(&mut self, entry: BackendEntry) -> Result<(), SimError> {
        for name in std::iter::once(entry.name.as_str())
            .chain(std::iter::once(entry.short.as_str()))
            .chain(entry.aliases.iter().map(String::as_str))
        {
            if self.resolve(name).is_some() {
                return Err(SimError::DuplicateBackend {
                    name: name.to_owned(),
                });
            }
        }
        self.entries.push(entry);
        Ok(())
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[BackendEntry] {
        &self.entries
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Resolves any accepted spelling (canonical, short or alias) to its entry.
    pub fn resolve(&self, name: &str) -> Option<&BackendEntry> {
        self.entries.iter().find(|e| e.matches(name))
    }

    /// Resolves a name to its built-in [`BackendKind`], when it names a built-in.
    pub fn kind_of(&self, name: &str) -> Option<BackendKind> {
        self.resolve(name).and_then(BackendEntry::kind)
    }

    /// Builds a fresh backend by name.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::UnknownBackend`] for unknown names and propagates
    /// configuration errors from the factory.
    pub fn build(
        &self,
        name: &str,
        config: SystemConfig,
    ) -> Result<Box<dyn MemoryBackend>, SimError> {
        match self.resolve(name) {
            Some(entry) => entry.build(config),
            None => Err(SimError::UnknownBackend {
                name: name.to_owned(),
                expected: self.expected_single(),
            }),
        }
    }

    /// The `expected ...` list of short names for single-backend flags, e.g.
    /// `"column, set-assoc or ideal"`. Derived, never hand-maintained.
    pub fn expected_single(&self) -> String {
        join_expected(self.entries.iter().map(|e| e.short.as_str()))
    }

    /// As [`BackendRegistry::expected_single`], for flags that also accept `all`, e.g.
    /// `"column, set-assoc, ideal or all"`.
    pub fn expected_list(&self) -> String {
        join_expected(self.entries.iter().map(|e| e.short.as_str()).chain(["all"]))
    }
}

/// Joins names as English usage text: `"a, b or c"`.
fn join_expected<'a>(names: impl Iterator<Item = &'a str>) -> String {
    let names: Vec<&str> = names.collect();
    match names.as_slice() {
        [] => String::new(),
        [only] => (*only).to_owned(),
        [init @ .., last] => format!("{} or {last}", init.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::IdealScratchpad;

    #[test]
    fn builtin_registry_mirrors_backend_kind() {
        let registry = BackendRegistry::builtin();
        assert_eq!(registry.entries().len(), BackendKind::ALL.len());
        for kind in BackendKind::ALL {
            let entry = registry.resolve(kind.canonical_name()).unwrap();
            assert_eq!(entry.kind(), Some(kind));
            assert_eq!(entry.name(), kind.to_string());
            // every accepted spelling resolves to the same entry
            assert_eq!(registry.kind_of(entry.short()), Some(kind));
            for alias in entry.aliases() {
                assert_eq!(registry.kind_of(alias), Some(kind));
            }
        }
        assert!(registry.resolve("victim-cache").is_none());
    }

    #[test]
    fn expected_strings_are_derived_from_registration_order() {
        let registry = BackendRegistry::builtin();
        assert_eq!(registry.expected_single(), "column, set-assoc or ideal");
        assert_eq!(registry.expected_list(), "column, set-assoc, ideal or all");
        assert_eq!(
            registry.names(),
            vec!["column-cache", "set-assoc", "ideal-scratchpad"]
        );
    }

    #[test]
    fn built_backends_match_direct_construction() {
        let registry = BackendRegistry::builtin();
        let cfg = SystemConfig::default();
        for kind in BackendKind::ALL {
            let from_registry = registry.build(kind.canonical_name(), cfg).unwrap();
            let direct = build_backend(kind, cfg).unwrap();
            assert_eq!(from_registry.name(), direct.name());
        }
        let err = registry.build("victim-cache", cfg).err().unwrap();
        assert_eq!(
            err.to_string(),
            "unknown backend 'victim-cache' (expected column, set-assoc or ideal)"
        );
    }

    #[test]
    fn user_backends_register_resolve_and_extend_expected_lists() {
        let mut registry = BackendRegistry::builtin();
        registry
            .register("victim", &["vc"], "a pretend victim cache", |cfg| {
                Ok(Box::new(IdealScratchpad::new(cfg)?))
            })
            .unwrap();
        assert!(registry.resolve("victim").is_some());
        assert!(registry.resolve("vc").is_some());
        assert_eq!(registry.kind_of("victim"), None);
        assert_eq!(
            registry.expected_single(),
            "column, set-assoc, ideal or victim"
        );
        assert_eq!(
            registry.expected_list(),
            "column, set-assoc, ideal, victim or all"
        );
        let backend = registry.build("vc", SystemConfig::default()).unwrap();
        assert_eq!(backend.name(), "ideal-scratchpad");
    }

    #[test]
    fn duplicate_registrations_are_rejected() {
        let mut registry = BackendRegistry::builtin();
        for taken in ["column", "column-cache", "baseline"] {
            let err = registry
                .register(taken, &[], "collides", |cfg| {
                    Ok(Box::new(IdealScratchpad::new(cfg)?))
                })
                .unwrap_err();
            assert_eq!(err, SimError::DuplicateBackend { name: taken.into() });
        }
        // a fresh name with a colliding alias is rejected too
        let err = registry
            .register("fresh", &["ideal"], "alias collides", |cfg| {
                Ok(Box::new(IdealScratchpad::new(cfg)?))
            })
            .unwrap_err();
        assert_eq!(
            err,
            SimError::DuplicateBackend {
                name: "ideal".into()
            }
        );
    }

    #[test]
    fn global_registry_is_shared_and_builtin() {
        let a = BackendRegistry::global();
        let b = BackendRegistry::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.entries().len(), BackendKind::ALL.len());
    }
}
