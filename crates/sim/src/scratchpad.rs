//! Dedicated scratchpad SRAM model.
//!
//! The paper's baseline on-chip memory organisation (following Panda, Dutt and Nicolau)
//! splits on-chip RAM into a hardware cache plus a *scratchpad*: a software-managed SRAM in
//! a separate address region with fully predictable single-cycle access. This module models
//! that dedicated SRAM so the column cache can be compared against the static
//! scratchpad+cache split of Figure 4, and so explicit copy costs in and out of the
//! scratchpad can be charged.

use crate::error::SimError;

/// A dedicated software-managed on-chip SRAM mapped at a fixed address range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scratchpad {
    base: u64,
    size: u64,
    /// Accesses satisfied by the scratchpad.
    pub accesses: u64,
    /// Bytes explicitly copied into the scratchpad by software.
    pub bytes_copied_in: u64,
    /// Bytes explicitly copied out of the scratchpad by software.
    pub bytes_copied_out: u64,
}

impl Scratchpad {
    /// Creates a scratchpad covering `[base, base + size)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadScratchpadRange`] if `size` is zero or the range wraps the
    /// address space.
    pub fn new(base: u64, size: u64) -> Result<Self, SimError> {
        if size == 0 || base.checked_add(size).is_none() {
            return Err(SimError::BadScratchpadRange { base, size });
        }
        Ok(Scratchpad {
            base,
            size,
            accesses: 0,
            bytes_copied_in: 0,
            bytes_copied_out: 0,
        })
    }

    /// First byte address of the scratchpad.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// First address past the scratchpad.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Returns `true` if `addr` falls inside the scratchpad.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Records one access (the memory system calls this when routing a reference here).
    pub fn record_access(&mut self) {
        self.accesses += 1;
    }

    /// Models a software-managed copy of `bytes` bytes from main memory into the
    /// scratchpad. Returns the number of cycles charged given a per-`line_size` transfer
    /// cost of `cycles_per_line` (the explicit-copy overhead the paper notes scratchpads
    /// require).
    pub fn copy_in(&mut self, bytes: u64, line_size: u64, cycles_per_line: u64) -> u64 {
        self.bytes_copied_in += bytes;
        bytes.div_ceil(line_size.max(1)) * cycles_per_line
    }

    /// Models a software-managed copy of `bytes` bytes out of the scratchpad back to main
    /// memory. Returns the cycles charged.
    pub fn copy_out(&mut self, bytes: u64, line_size: u64, cycles_per_line: u64) -> u64 {
        self.bytes_copied_out += bytes;
        bytes.div_ceil(line_size.max(1)) * cycles_per_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Scratchpad::new(0x1000, 0).is_err());
        assert!(Scratchpad::new(u64::MAX, 2).is_err());
        let sp = Scratchpad::new(0x1000, 512).unwrap();
        assert_eq!(sp.base(), 0x1000);
        assert_eq!(sp.size(), 512);
        assert_eq!(sp.end(), 0x1200);
    }

    #[test]
    fn contains_is_half_open() {
        let sp = Scratchpad::new(0x1000, 512).unwrap();
        assert!(sp.contains(0x1000));
        assert!(sp.contains(0x11ff));
        assert!(!sp.contains(0x1200));
        assert!(!sp.contains(0xfff));
    }

    #[test]
    fn copy_costs_round_up_to_lines() {
        let mut sp = Scratchpad::new(0, 1024).unwrap();
        // 100 bytes over 32-byte lines = 4 lines
        assert_eq!(sp.copy_in(100, 32, 20), 80);
        assert_eq!(sp.bytes_copied_in, 100);
        assert_eq!(sp.copy_out(64, 32, 20), 40);
        assert_eq!(sp.bytes_copied_out, 64);
    }

    #[test]
    fn access_counter() {
        let mut sp = Scratchpad::new(0, 64).unwrap();
        sp.record_access();
        sp.record_access();
        assert_eq!(sp.accesses, 2);
    }
}
