//! Trace-driven simulator of a software-controlled (column) cache and its memory system.
//!
//! This crate implements the *hardware* half of the paper: a set-associative cache whose
//! replacement unit can be restricted, per access, to a subset of its ways ("columns"), the
//! TLB/page-table machinery that carries the mapping information (as *tints*), a dedicated
//! scratchpad SRAM model for baselines, an off-chip memory model and a cycle-approximate
//! timing model.
//!
//! The main entry point is [`system::MemorySystem`], which exposes both the datapath
//! (replay memory references, collect hit/miss/cycle statistics) and the software control
//! interface (define tints, remap tints to column bit-vectors, re-tint address ranges,
//! dedicate columns as scratchpad).
//!
//! # Quick start
//!
//! ```
//! use ccache_sim::prelude::*;
//!
//! let mut sys = MemorySystem::with_default_cache(); // 2 KiB, 4 columns, 32-byte lines
//!
//! // Give the address range of a critical variable its own column.
//! sys.define_tint(Tint(1), ColumnMask::single(0))?;
//! sys.tint_range(0x1000..0x1200, Tint(1));
//!
//! // Replay some references.
//! let cycles = sys.run((0..16u64).map(|i| (0x1000 + i * 32, false)));
//! assert!(cycles > 0);
//! assert_eq!(sys.cache_stats().misses, 16);
//! # Ok::<(), ccache_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod cache;
pub mod config;
pub mod error;
pub mod json;
pub mod mask;
pub mod memory;
pub mod page_table;
pub mod registry;
pub mod replacement;
pub mod scratchpad;
pub mod stats;
pub mod system;
pub mod tint;
pub mod tlb;

pub use backend::{build_backend, BackendKind, IdealScratchpad, MemoryBackend, SetAssocBaseline};
pub use cache::{AccessOutcome, CacheLine, ColumnCache, Eviction};
pub use config::{CacheConfig, CacheConfigBuilder, LatencyConfig};
pub use error::SimError;
pub use mask::ColumnMask;
pub use memory::MainMemory;
pub use page_table::{PageEntry, PageTable};
pub use registry::{BackendEntry, BackendFactory, BackendRegistry};
pub use replacement::{ReplacementPolicy, ReplacementState};
pub use scratchpad::Scratchpad;
pub use stats::{BatchMemoStats, CacheStats, CycleReport, MemoryStats};
pub use system::{MemorySystem, SystemConfig};
pub use tint::{Tint, TintTable};
pub use tlb::{Tlb, TlbStats};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use crate::backend::{build_backend, BackendKind, MemoryBackend};
    pub use crate::cache::{AccessOutcome, ColumnCache};
    pub use crate::config::{CacheConfig, LatencyConfig};
    pub use crate::error::SimError;
    pub use crate::mask::ColumnMask;
    pub use crate::replacement::ReplacementPolicy;
    pub use crate::stats::{CacheStats, CycleReport, MemoryStats};
    pub use crate::system::{MemorySystem, SystemConfig};
    pub use crate::tint::Tint;
}
