//! The column cache: a set-associative cache whose replacement unit is restricted by a
//! per-access [`ColumnMask`].
//!
//! Lookup behaves exactly like a standard set-associative cache — every way of the selected
//! set is searched — so a hit never depends on the mask and repartitioning is graceful
//! (Section 2.1). Only victim selection on a miss is restricted to the allowed columns.
//!
//! # Layout: struct-of-arrays
//!
//! Cache state is stored as packed per-set arrays rather than an array of
//! [`CacheLine`] structs: one contiguous tag vector (`sets × columns`, row-major by
//! set) and one `u64` valid/dirty bitmask per set. The invariants the layout maintains:
//!
//! * bit `w` of `valid[set]` is set **iff** way `w` of `set` holds a live line, and
//!   `tags[set * columns + w]` is meaningful only while that bit is set;
//! * `dirty[set]` is always a subset of `valid[set]` (`dirty & !valid == 0`);
//! * at most one valid way of a set carries any given tag (fills happen only on
//!   misses), so the first match found in ascending way order is *the* match.
//!
//! This keeps the hot probe loop branch-light — iterate the set bits of `valid[set]`
//! over a contiguous tag row — and makes line validity available to the replacement
//! unit as a ready-made `u64` mask, so victim selection allocates nothing. Address
//! splitting uses precomputed shifts/masks (line size and set count are validated
//! powers of two) instead of division. The [`CacheLine`] struct survives as the
//! *view* type returned by [`ColumnCache::line`].

use crate::config::CacheConfig;
use crate::error::SimError;
use crate::mask::ColumnMask;
use crate::replacement::ReplacementState;
use crate::stats::CacheStats;

/// State of one cache line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLine {
    /// Whether the line holds valid data.
    pub valid: bool,
    /// Whether the line has been written since it was filled.
    pub dirty: bool,
    /// Tag (upper address bits) of the cached line.
    pub tag: u64,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the evicted line.
    pub line_addr: u64,
    /// Whether the line was dirty (and therefore written back).
    pub dirty: bool,
    /// Column the line was evicted from.
    pub column: usize,
}

/// Result of presenting one access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was found; `column` is the way it was found in.
    Hit {
        /// Column (way) the data was found in.
        column: usize,
    },
    /// The line was not found; it was filled into `column`, possibly evicting a line.
    Miss {
        /// Column (way) the new line was installed in.
        column: usize,
        /// The line that was evicted, if any valid line had to make room.
        evicted: Option<Eviction>,
    },
    /// The line was not found and the mask allowed no column, so nothing was cached.
    Bypass,
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }

    /// Returns `true` for [`AccessOutcome::Miss`] or [`AccessOutcome::Bypass`].
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// Returns the eviction caused by this access, if any.
    pub fn eviction(&self) -> Option<Eviction> {
        match self {
            AccessOutcome::Miss { evicted, .. } => *evicted,
            _ => None,
        }
    }
}

/// A software-partitionable set-associative cache.
///
/// State is held in struct-of-arrays form — packed per-set tag rows plus `u64`
/// valid/dirty bitmasks — see the module docs for the layout invariants.
///
/// # Example
///
/// ```
/// use ccache_sim::cache::ColumnCache;
/// use ccache_sim::config::CacheConfig;
/// use ccache_sim::mask::ColumnMask;
///
/// let mut cache = ColumnCache::new(CacheConfig::default());
/// let everything = ColumnMask::all(4);
/// assert!(cache.access(0x1000, false, everything).is_miss());
/// assert!(cache.access(0x1000, false, everything).is_hit());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnCache {
    config: CacheConfig,
    /// `log2(line_size)` — the offset width of an address.
    line_shift: u32,
    /// `log2(sets)` — the index width of an address.
    set_bits: u32,
    /// `sets - 1`, the index extraction mask.
    set_mask: u64,
    /// `config.columns()`, kept local to the hot path.
    columns: usize,
    /// All-ways mask: bit `w` set for every existing column `w`.
    ways_mask: u64,
    /// Tags, row-major by set: way `w` of set `s` is `tags[s * columns + w]`.
    tags: Vec<u64>,
    /// Per-set validity bitmask (bit `w` = way `w` holds a live line).
    valid: Vec<u64>,
    /// Per-set dirtiness bitmask; always a subset of `valid`.
    dirty: Vec<u64>,
    /// Per-set replacement state.
    repl: Vec<ReplacementState>,
    stats: CacheStats,
}

impl ColumnCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let columns = config.columns();
        ColumnCache {
            config,
            line_shift: config.line_size().trailing_zeros(),
            set_bits: sets.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            columns,
            ways_mask: if columns >= 64 {
                u64::MAX
            } else {
                (1u64 << columns) - 1
            },
            tags: vec![0; sets * columns],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            repl: (0..sets)
                .map(|i| ReplacementState::new(config.replacement(), columns, i as u64 + 1))
                .collect(),
            stats: CacheStats::new(columns),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics to zero without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new(self.columns);
    }

    /// Returns the cache to exactly its just-constructed state — every line invalid,
    /// replacement state re-seeded, statistics zeroed — without reallocating the tag,
    /// validity or replacement vectors. This is the allocation-free alternative to
    /// rebuilding the cache that the pooled fitness datapath takes between candidates.
    pub fn clear(&mut self) {
        self.tags.fill(0);
        self.valid.fill(0);
        self.dirty.fill(0);
        for (i, repl) in self.repl.iter_mut().enumerate() {
            repl.reset(i as u64 + 1);
        }
        self.stats = CacheStats::new(self.columns);
    }

    /// Splits an address into `(tag, set index)` with the precomputed shift/mask pair —
    /// the allocation- and division-free equivalent of
    /// [`CacheConfig::split_addr`](crate::config::CacheConfig::split_addr).
    #[inline]
    fn tag_and_set(&self, addr: u64) -> (u64, usize) {
        let line = addr >> self.line_shift;
        ((line >> self.set_bits), (line & self.set_mask) as usize)
    }

    /// Reconstructs a line's base address from its tag and set index.
    #[inline]
    fn line_addr(&self, tag: u64, set_idx: usize) -> u64 {
        ((tag << self.set_bits) | set_idx as u64) << self.line_shift
    }

    /// The state of way `column` of `set` as a [`CacheLine`] view.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `column` is out of range.
    pub fn line(&self, set: usize, column: usize) -> CacheLine {
        assert!(set < self.valid.len() && column < self.columns);
        CacheLine {
            valid: self.valid[set] & (1 << column) != 0,
            dirty: self.dirty[set] & (1 << column) != 0,
            tag: self.tags[set * self.columns + column],
        }
    }

    /// Presents one access to the cache and returns what happened.
    ///
    /// `mask` restricts which columns the replacement unit may fill on a miss; it never
    /// affects lookup. An empty (or fully out-of-range) effective mask turns the access into
    /// a [`AccessOutcome::Bypass`].
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool, mask: ColumnMask) -> AccessOutcome {
        let (tag, set_idx) = self.tag_and_set(addr);
        let base = set_idx * self.columns;
        self.stats.accesses += 1;

        // Lookup searches every (valid) column regardless of the mask: iterate the set
        // bits of the validity mask over the contiguous tag row. At most one valid way
        // can carry this tag, so the first match is the only match.
        let valid_bits = self.valid[set_idx];
        let mut probe = valid_bits;
        while probe != 0 {
            let way = probe.trailing_zeros() as usize;
            if self.tags[base + way] == tag {
                self.repl[set_idx].on_access(way);
                if is_write {
                    self.dirty[set_idx] |= 1 << way;
                }
                self.stats.hits += 1;
                self.stats.column_hits[way] += 1;
                return AccessOutcome::Hit { column: way };
            }
            probe &= probe - 1;
        }

        // Miss: restrict the fill to the allowed columns. The validity mask is already
        // in the form the replacement unit wants — no per-miss allocation.
        let effective = ColumnMask::from_bits(mask.bits() & self.ways_mask);
        let Some(way) = self.repl[set_idx].victim(effective, valid_bits) else {
            self.stats.bypasses += 1;
            return AccessOutcome::Bypass;
        };

        let bit = 1u64 << way;
        let evicted = if valid_bits & bit != 0 {
            let was_dirty = self.dirty[set_idx] & bit != 0;
            self.stats.evictions += 1;
            if was_dirty {
                self.stats.writebacks += 1;
            }
            Some(Eviction {
                line_addr: self.line_addr(self.tags[base + way], set_idx),
                dirty: was_dirty,
                column: way,
            })
        } else {
            None
        };

        self.tags[base + way] = tag;
        self.valid[set_idx] |= bit;
        if is_write {
            self.dirty[set_idx] |= bit;
        } else {
            self.dirty[set_idx] &= !bit;
        }
        self.repl[set_idx].on_fill(way);
        self.stats.misses += 1;
        self.stats.column_fills[way] += 1;
        AccessOutcome::Miss {
            column: way,
            evicted,
        }
    }

    /// Non-mutating lookup: returns the column holding `addr`, if cached.
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let (tag, set_idx) = self.tag_and_set(addr);
        let base = set_idx * self.columns;
        let mut probe = self.valid[set_idx];
        while probe != 0 {
            let way = probe.trailing_zeros() as usize;
            if self.tags[base + way] == tag {
                return Some(way);
            }
            probe &= probe - 1;
        }
        None
    }

    /// Returns `true` if `addr` is currently cached.
    pub fn contains(&self, addr: u64) -> bool {
        self.probe(addr).is_some()
    }

    /// Pre-loads every line of `[base, base + size)` into the columns allowed by `mask`,
    /// as software does when establishing a scratchpad region (Section 2.3). Returns the
    /// number of lines that had to be fetched (i.e. missed).
    pub fn preload(&mut self, base: u64, size: u64, mask: ColumnMask) -> u64 {
        let line = self.config.line_size();
        let mut fetched = 0;
        let mut addr = base - base % line;
        while addr < base + size {
            if self.access(addr, false, mask).is_miss() {
                fetched += 1;
            }
            addr += line;
        }
        fetched
    }

    /// Invalidates every line without writing anything back. Returns the number of lines
    /// dropped.
    pub fn invalidate_all(&mut self) -> u64 {
        let mut dropped = 0;
        for set in 0..self.valid.len() {
            dropped += u64::from(self.valid[set].count_ones());
            self.valid[set] = 0;
            self.dirty[set] = 0;
        }
        dropped
    }

    /// Writes back every dirty line and invalidates the cache. Returns the number of
    /// writebacks performed (also added to the statistics).
    pub fn flush(&mut self) -> u64 {
        let mut writebacks = 0;
        for set in 0..self.valid.len() {
            writebacks += u64::from((self.valid[set] & self.dirty[set]).count_ones());
            self.valid[set] = 0;
            self.dirty[set] = 0;
        }
        self.stats.writebacks += writebacks;
        writebacks
    }

    /// Number of valid lines currently held in `column`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ColumnOutOfRange`] if `column` does not exist.
    pub fn occupancy(&self, column: usize) -> Result<usize, SimError> {
        if column >= self.columns {
            return Err(SimError::ColumnOutOfRange {
                column,
                columns: self.columns,
            });
        }
        let bit = 1u64 << column;
        Ok(self.valid.iter().filter(|&&v| v & bit != 0).count())
    }

    /// Total number of valid lines in the cache.
    pub fn valid_lines(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Iterates over `(set, column, line)` for every valid line — used by tests and
    /// invariant checks.
    pub fn valid_line_addrs(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for (si, &valid) in self.valid.iter().enumerate() {
            let mut bits = valid;
            while bits != 0 {
                let wi = bits.trailing_zeros() as usize;
                out.push((
                    si,
                    wi,
                    self.line_addr(self.tags[si * self.columns + wi], si),
                ));
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> ColumnCache {
        ColumnCache::new(CacheConfig::default()) // 2 KiB, 4 columns, 32 B lines, 16 sets
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = small_cache();
        let m = ColumnMask::all(4);
        assert!(c.access(0x1000, false, m).is_miss());
        assert!(c.access(0x1000, false, m).is_hit());
        assert!(c.access(0x101f, true, m).is_hit()); // same 32-byte line
        assert!(c.access(0x1020, false, m).is_miss()); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fills_stay_within_mask() {
        let mut c = small_cache();
        let m = ColumnMask::single(2);
        // 8 distinct lines mapping to the same set: set stride = sets * line = 512
        for i in 0..8u64 {
            let out = c.access(0x1000 + i * 512, false, m);
            match out {
                AccessOutcome::Miss { column, .. } => assert_eq!(column, 2),
                other => panic!("expected miss, got {other:?}"),
            }
        }
        // only one line can survive in a single column per set
        assert_eq!(c.valid_lines(), 1);
        assert_eq!(c.occupancy(2).unwrap(), 1);
        assert_eq!(c.occupancy(0).unwrap(), 0);
        assert_eq!(c.stats().evictions, 7);
    }

    #[test]
    fn hits_ignore_the_mask() {
        let mut c = small_cache();
        // fill into column 0
        assert!(c.access(0x2000, false, ColumnMask::single(0)).is_miss());
        // later accesses mapped to a different column still hit the old location
        assert!(c.access(0x2000, false, ColumnMask::single(3)).is_hit());
        assert_eq!(c.probe(0x2000), Some(0));
    }

    #[test]
    fn remapped_data_moves_only_after_eviction() {
        let mut c = small_cache();
        c.access(0x3000, false, ColumnMask::single(1));
        assert_eq!(c.probe(0x3000), Some(1));
        // evict it by filling column 1 of the same set with a conflicting line
        c.access(0x3000 + 512, false, ColumnMask::single(1));
        assert!(!c.contains(0x3000));
        // on the next access under the new mapping it lands in column 2
        c.access(0x3000, false, ColumnMask::single(2));
        assert_eq!(c.probe(0x3000), Some(2));
    }

    #[test]
    fn empty_mask_bypasses() {
        let mut c = small_cache();
        let out = c.access(0x4000, false, ColumnMask::EMPTY);
        assert_eq!(out, AccessOutcome::Bypass);
        assert!(!c.contains(0x4000));
        assert_eq!(c.stats().bypasses, 1);
        assert!(out.is_miss());
        assert_eq!(out.eviction(), None);
    }

    #[test]
    fn dirty_evictions_are_written_back() {
        let mut c = small_cache();
        let m = ColumnMask::single(0);
        c.access(0x5000, true, m); // dirty fill
        let out = c.access(0x5000 + 512, false, m); // evicts the dirty line
        let ev = out.eviction().expect("eviction expected");
        assert!(ev.dirty);
        assert_eq!(ev.line_addr, 0x5000);
        assert_eq!(ev.column, 0);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_line_dirty_for_flush() {
        let mut c = small_cache();
        let m = ColumnMask::all(4);
        c.access(0x6000, false, m);
        c.access(0x6000, true, m);
        assert_eq!(c.flush(), 1);
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.contains(0x6000));
    }

    #[test]
    fn preload_establishes_scratchpad_lines() {
        let mut c = small_cache();
        // one column = 512 bytes = 16 lines
        let fetched = c.preload(0x8000, 512, ColumnMask::single(3));
        assert_eq!(fetched, 16);
        assert_eq!(c.occupancy(3).unwrap(), 16);
        // preloading again costs nothing
        assert_eq!(c.preload(0x8000, 512, ColumnMask::single(3)), 0);
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut c = small_cache();
        c.access(0x9000, true, ColumnMask::all(4));
        let before = c.stats().writebacks;
        assert_eq!(c.invalidate_all(), 1);
        assert_eq!(c.stats().writebacks, before);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn occupancy_rejects_bad_column() {
        let c = small_cache();
        assert!(matches!(
            c.occupancy(4),
            Err(SimError::ColumnOutOfRange {
                column: 4,
                columns: 4
            })
        ));
    }

    #[test]
    fn valid_line_addrs_reports_cached_lines() {
        let mut c = small_cache();
        c.access(0xa000, false, ColumnMask::single(1));
        let lines = c.valid_line_addrs();
        assert_eq!(lines.len(), 1);
        let (_set, col, addr) = lines[0];
        assert_eq!(col, 1);
        assert_eq!(addr, 0xa000);
    }

    #[test]
    fn clear_matches_fresh_construction() {
        let mut c = small_cache();
        for i in 0..64u64 {
            c.access(0x1000 + i * 96, i % 2 == 0, ColumnMask::all(4));
        }
        c.clear();
        assert_eq!(c, small_cache());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        c.access(0xb000, false, ColumnMask::all(4));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(0xb000));
    }
}
