//! Page table carrying per-page tint and cacheability information.
//!
//! Column-cache mapping information lives in the page table so the existing virtual-memory
//! machinery (page table + TLB) can deliver it to the replacement unit (Section 2.2). The
//! minimum mapping granularity is therefore one page.

use crate::error::SimError;
use crate::tint::Tint;
use std::collections::BTreeMap;
use std::ops::Range;

/// Per-page attributes relevant to the column cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// The page's tint (resolved to a column mask through the tint table).
    pub tint: Tint,
    /// Whether accesses to the page may be cached at all.
    pub cacheable: bool,
}

impl Default for PageEntry {
    fn default() -> Self {
        PageEntry {
            tint: Tint::DEFAULT,
            cacheable: true,
        }
    }
}

/// A sparse page table: pages not explicitly configured use [`PageEntry::default`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageTable {
    page_size: u64,
    entries: BTreeMap<u64, PageEntry>,
    /// Number of page-table-entry writes performed (each re-tinted page costs one).
    pub entry_writes: u64,
}

impl PageTable {
    /// Creates a page table with the given page size (power of two).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadSize`] if `page_size` is zero or not a power of two.
    pub fn new(page_size: u64) -> Result<Self, SimError> {
        if page_size == 0 || !page_size.is_power_of_two() {
            return Err(SimError::BadSize {
                what: "page size",
                value: page_size,
            });
        }
        Ok(PageTable {
            page_size,
            entries: BTreeMap::new(),
            entry_writes: 0,
        })
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Virtual page number of an address.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_size
    }

    /// Returns the entry of the page containing `addr` (default if unconfigured).
    pub fn entry_for_addr(&self, addr: u64) -> PageEntry {
        self.entry(self.page_of(addr))
    }

    /// Returns the entry of virtual page `vpn` (default if unconfigured).
    pub fn entry(&self, vpn: u64) -> PageEntry {
        self.entries.get(&vpn).copied().unwrap_or_default()
    }

    /// Sets the tint of a single page. Returns the previous entry.
    pub fn set_page_tint(&mut self, vpn: u64, tint: Tint) -> PageEntry {
        let prev = self.entry(vpn);
        self.entries.insert(vpn, PageEntry { tint, ..prev });
        self.entry_writes += 1;
        prev
    }

    /// Sets the cacheability of a single page. Returns the previous entry.
    pub fn set_page_cacheable(&mut self, vpn: u64, cacheable: bool) -> PageEntry {
        let prev = self.entry(vpn);
        self.entries.insert(vpn, PageEntry { cacheable, ..prev });
        self.entry_writes += 1;
        prev
    }

    /// Sets the tint of every page overlapping the byte range. Returns the page numbers
    /// whose entry actually changed (these are the TLB entries that must be flushed).
    pub fn tint_range(&mut self, range: Range<u64>, tint: Tint) -> Vec<u64> {
        let mut changed = Vec::new();
        for vpn in self.pages_in(range) {
            if self.entry(vpn).tint != tint {
                self.set_page_tint(vpn, tint);
                changed.push(vpn);
            }
        }
        changed
    }

    /// Marks every page overlapping the byte range cacheable or uncacheable. Returns the
    /// page numbers whose entry changed.
    pub fn set_cacheable_range(&mut self, range: Range<u64>, cacheable: bool) -> Vec<u64> {
        let mut changed = Vec::new();
        for vpn in self.pages_in(range) {
            if self.entry(vpn).cacheable != cacheable {
                self.set_page_cacheable(vpn, cacheable);
                changed.push(vpn);
            }
        }
        changed
    }

    /// The page numbers overlapping a byte range.
    pub fn pages_in(&self, range: Range<u64>) -> Vec<u64> {
        if range.is_empty() {
            return Vec::new();
        }
        let first = self.page_of(range.start);
        let last = self.page_of(range.end - 1);
        (first..=last).collect()
    }

    /// Drops every explicit entry and zeroes the write counter, returning the table to
    /// its just-constructed state (same page size). Used when a pooled engine is recycled
    /// between candidates; unlike the `set_*` operations it costs no modelled writes.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.entry_writes = 0;
    }

    /// Number of pages with an explicit (non-default) entry.
    pub fn configured_pages(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over explicitly configured `(vpn, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, PageEntry)> + '_ {
        self.entries.iter().map(|(v, e)| (*v, *e))
    }
}

impl Default for PageTable {
    /// A page table with 4 KiB pages.
    fn default() -> Self {
        PageTable::new(4096).expect("4 KiB pages are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_page_size() {
        assert!(PageTable::new(0).is_err());
        assert!(PageTable::new(3000).is_err());
        assert!(PageTable::new(4096).is_ok());
    }

    #[test]
    fn default_entry_is_cacheable_default_tint() {
        let pt = PageTable::default();
        let e = pt.entry_for_addr(0x1234_5678);
        assert_eq!(e.tint, Tint::DEFAULT);
        assert!(e.cacheable);
        assert_eq!(pt.configured_pages(), 0);
    }

    #[test]
    fn page_of_uses_page_size() {
        let pt = PageTable::new(1024).unwrap();
        assert_eq!(pt.page_of(0), 0);
        assert_eq!(pt.page_of(1023), 0);
        assert_eq!(pt.page_of(1024), 1);
        assert_eq!(pt.page_size(), 1024);
    }

    #[test]
    fn tint_range_touches_every_overlapping_page() {
        let mut pt = PageTable::new(1024).unwrap();
        let changed = pt.tint_range(1000..3000, Tint(2));
        // pages 0, 1, 2 overlap [1000, 3000)
        assert_eq!(changed, vec![0, 1, 2]);
        assert_eq!(pt.entry(0).tint, Tint(2));
        assert_eq!(pt.entry(2).tint, Tint(2));
        assert_eq!(pt.entry(3).tint, Tint::DEFAULT);
        assert_eq!(pt.configured_pages(), 3);
        assert_eq!(pt.entry_writes, 3);
    }

    #[test]
    fn tint_range_reports_only_changes() {
        let mut pt = PageTable::new(1024).unwrap();
        pt.tint_range(0..2048, Tint(1));
        let changed = pt.tint_range(0..2048, Tint(1));
        assert!(changed.is_empty());
        let changed = pt.tint_range(0..1024, Tint(2));
        assert_eq!(changed, vec![0]);
    }

    #[test]
    fn empty_range_changes_nothing() {
        let mut pt = PageTable::default();
        assert!(pt.tint_range(100..100, Tint(1)).is_empty());
        assert!(pt.pages_in(5..5).is_empty());
    }

    #[test]
    fn cacheability_is_per_page() {
        let mut pt = PageTable::new(4096).unwrap();
        pt.set_cacheable_range(0..4096, false);
        assert!(!pt.entry_for_addr(100).cacheable);
        assert!(pt.entry_for_addr(4096).cacheable);
        // tint preserved across cacheability change
        pt.set_page_tint(0, Tint(3));
        pt.set_page_cacheable(0, true);
        assert_eq!(pt.entry(0).tint, Tint(3));
        assert!(pt.entry(0).cacheable);
    }

    #[test]
    fn iter_lists_configured_pages() {
        let mut pt = PageTable::new(4096).unwrap();
        pt.set_page_tint(7, Tint(1));
        pt.set_page_tint(3, Tint(2));
        let v: Vec<_> = pt.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, 3); // sorted by vpn
    }
}
