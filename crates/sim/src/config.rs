//! Cache and memory-system configuration.

use crate::error::SimError;
use crate::replacement::ReplacementPolicy;

/// Geometry and policy of one column cache.
///
/// Capacity is `columns * sets_per_column * line_size` bytes; a *column* is one way of the
/// set-associative cache, so an ordinary `n`-way cache is a column cache with `n` columns
/// whose every access carries a full mask.
///
/// Use [`CacheConfig::builder`] to construct a validated configuration:
///
/// ```
/// use ccache_sim::config::CacheConfig;
///
/// let cfg = CacheConfig::builder()
///     .capacity_bytes(2048)
///     .columns(4)
///     .line_size(32)
///     .build()?;
/// assert_eq!(cfg.sets(), 16);
/// assert_eq!(cfg.column_bytes(), 512);
/// # Ok::<(), ccache_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    capacity_bytes: u64,
    columns: usize,
    line_size: u64,
    replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Starts building a configuration. Defaults: 2 KiB capacity, 4 columns, 32-byte lines,
    /// LRU replacement — the on-chip memory used in the paper's Figure 4 experiments.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of columns (ways).
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Cache-line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Replacement policy.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Number of sets (capacity / columns / line size).
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.columns as u64 / self.line_size) as usize
    }

    /// Bytes held by one column (capacity / columns).
    pub fn column_bytes(&self) -> u64 {
        self.capacity_bytes / self.columns as u64
    }

    /// Number of lines in one column (same as the number of sets).
    pub fn lines_per_column(&self) -> usize {
        self.sets()
    }

    /// Total number of lines in the cache.
    pub fn total_lines(&self) -> usize {
        self.sets() * self.columns
    }

    /// Splits an address into (tag, set index, offset within line).
    pub fn split_addr(&self, addr: u64) -> (u64, usize, u64) {
        let offset = addr % self.line_size;
        let line_addr = addr / self.line_size;
        let set = (line_addr % self.sets() as u64) as usize;
        let tag = line_addr / self.sets() as u64;
        (tag, set, offset)
    }

    /// Reconstructs the base address of a line from its tag and set index.
    pub fn line_addr(&self, tag: u64, set: usize) -> u64 {
        (tag * self.sets() as u64 + set as u64) * self.line_size
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::builder()
            .build()
            .expect("default config is valid")
    }
}

/// Builder for [`CacheConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfigBuilder {
    capacity_bytes: u64,
    columns: usize,
    line_size: u64,
    replacement: ReplacementPolicy,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder {
            capacity_bytes: 2048,
            columns: 4,
            line_size: 32,
            replacement: ReplacementPolicy::Lru,
        }
    }
}

impl CacheConfigBuilder {
    /// Sets the total capacity in bytes (power of two).
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Sets the number of columns (ways).
    pub fn columns(mut self, columns: usize) -> Self {
        self.columns = columns;
        self
    }

    /// Sets the line size in bytes (power of two).
    pub fn line_size(mut self, bytes: u64) -> Self {
        self.line_size = bytes;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadSize`] if capacity or line size is zero or not a power of two
    /// and [`SimError::BadGeometry`] if capacity is not divisible into at least one full set
    /// per column or the column count is unsupported.
    pub fn build(self) -> Result<CacheConfig, SimError> {
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_power_of_two() {
            return Err(SimError::BadSize {
                what: "capacity",
                value: self.capacity_bytes,
            });
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(SimError::BadSize {
                what: "line size",
                value: self.line_size,
            });
        }
        if self.columns == 0 || self.columns > crate::mask::MAX_COLUMNS {
            return Err(SimError::BadGeometry {
                reason: format!(
                    "column count {} must be in 1..={}",
                    self.columns,
                    crate::mask::MAX_COLUMNS
                ),
            });
        }
        let per_column = self.capacity_bytes / self.columns as u64;
        if per_column * self.columns as u64 != self.capacity_bytes {
            return Err(SimError::BadGeometry {
                reason: format!(
                    "capacity {} not divisible by {} columns",
                    self.capacity_bytes, self.columns
                ),
            });
        }
        if per_column < self.line_size || !per_column.is_multiple_of(self.line_size) {
            return Err(SimError::BadGeometry {
                reason: format!(
                    "column of {per_column} bytes cannot hold whole {}-byte lines",
                    self.line_size
                ),
            });
        }
        let sets = per_column / self.line_size;
        if !sets.is_power_of_two() {
            return Err(SimError::BadGeometry {
                reason: format!("set count {sets} must be a power of two"),
            });
        }
        Ok(CacheConfig {
            capacity_bytes: self.capacity_bytes,
            columns: self.columns,
            line_size: self.line_size,
            replacement: self.replacement,
        })
    }
}

/// Latency parameters of the simulated memory system, in CPU cycles.
///
/// These defaults model a small embedded system-on-chip: single-cycle hits, a modest
/// off-chip miss penalty and a single-cycle scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Cycles charged for a cache hit (and for the lookup portion of a miss).
    pub hit_latency: u64,
    /// Additional cycles charged for fetching a line from main memory on a miss.
    pub miss_penalty: u64,
    /// Additional cycles charged when a dirty victim line must be written back.
    pub writeback_penalty: u64,
    /// Cycles charged for an access to dedicated scratchpad SRAM.
    pub scratchpad_latency: u64,
    /// Cycles charged for an uncached access that goes straight to main memory.
    pub uncached_latency: u64,
    /// Additional cycles charged when the TLB misses and the page table must be walked.
    pub tlb_miss_penalty: u64,
    /// Non-memory (compute) cycles charged per instruction when deriving CPI.
    pub compute_cycles_per_instruction: u64,
    /// Number of instructions represented by one memory reference in the trace
    /// (i.e. one in every `instructions_per_reference` instructions touches memory).
    pub instructions_per_reference: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            hit_latency: 1,
            miss_penalty: 20,
            writeback_penalty: 10,
            scratchpad_latency: 1,
            uncached_latency: 30,
            tlb_miss_penalty: 20,
            compute_cycles_per_instruction: 1,
            instructions_per_reference: 3,
        }
    }
}

impl LatencyConfig {
    /// A latency configuration with every penalty but the hit latency set to zero, useful
    /// for tests that want to count events rather than cycles.
    pub fn zero_penalty() -> Self {
        LatencyConfig {
            hit_latency: 1,
            miss_penalty: 0,
            writeback_penalty: 0,
            scratchpad_latency: 1,
            uncached_latency: 0,
            tlb_miss_penalty: 0,
            compute_cycles_per_instruction: 1,
            instructions_per_reference: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_figure4_memory() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.capacity_bytes(), 2048);
        assert_eq!(cfg.columns(), 4);
        assert_eq!(cfg.line_size(), 32);
        assert_eq!(cfg.sets(), 16);
        assert_eq!(cfg.column_bytes(), 512);
        assert_eq!(cfg.total_lines(), 64);
        assert_eq!(cfg.replacement(), ReplacementPolicy::Lru);
    }

    #[test]
    fn builder_validates_power_of_two() {
        assert!(matches!(
            CacheConfig::builder().capacity_bytes(3000).build(),
            Err(SimError::BadSize {
                what: "capacity",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder().line_size(48).build(),
            Err(SimError::BadSize {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::builder().columns(0).build(),
            Err(SimError::BadGeometry { .. })
        ));
        assert!(matches!(
            CacheConfig::builder().columns(65).build(),
            Err(SimError::BadGeometry { .. })
        ));
    }

    #[test]
    fn builder_rejects_column_smaller_than_line() {
        let r = CacheConfig::builder()
            .capacity_bytes(64)
            .columns(4)
            .line_size(32)
            .build();
        assert!(matches!(r, Err(SimError::BadGeometry { .. })));
    }

    #[test]
    fn builder_rejects_non_power_of_two_sets() {
        // capacity 1536 is not a power of two -> caught earlier; craft 3 columns instead
        let r = CacheConfig::builder()
            .capacity_bytes(2048)
            .columns(3)
            .line_size(32)
            .build();
        // 2048 / 3 is not exact
        assert!(matches!(r, Err(SimError::BadGeometry { .. })));
    }

    #[test]
    fn split_and_reconstruct_addresses() {
        let cfg = CacheConfig::default();
        let addr = 0x1_2345u64;
        let (tag, set, off) = cfg.split_addr(addr);
        assert_eq!(off, addr % 32);
        assert_eq!(cfg.line_addr(tag, set), addr - off);
        // different addresses in the same line share tag and set
        let (t2, s2, _) = cfg.split_addr(addr + 1);
        assert_eq!((tag, set), (t2, s2));
    }

    #[test]
    fn sixteen_way_configuration() {
        let cfg = CacheConfig::builder()
            .capacity_bytes(16 * 1024)
            .columns(16)
            .line_size(32)
            .build()
            .unwrap();
        assert_eq!(cfg.sets(), 32);
        assert_eq!(cfg.column_bytes(), 1024);
    }

    #[test]
    fn latency_defaults_and_zero_penalty() {
        let l = LatencyConfig::default();
        assert_eq!(l.hit_latency, 1);
        assert!(l.miss_penalty > l.hit_latency);
        let z = LatencyConfig::zero_penalty();
        assert_eq!(z.miss_penalty, 0);
        assert_eq!(z.instructions_per_reference, 1);
    }
}
