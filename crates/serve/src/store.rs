//! The content-addressed result store.
//!
//! Results are memoized under the canonical spec key
//! ([`Session::spec_key`](column_caching::Session::spec_key)): the first claimant of a
//! key becomes its *owner* and computes; every concurrent or later claimant blocks on
//! the in-flight slot and receives the very same [`StoredResult`] — so identical
//! submissions compute exactly once and every caller replies with byte-identical
//! artefact text. Failures are memoized too: execution is deterministic, so re-running
//! a failed key would fail identically.

use ccache_json::Json;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A memoized success: the reply document plus its canonical rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// The result document embedded in reply frames.
    pub doc: Json,
    /// The canonical pretty rendering of `doc` — for artefacts, exactly the bytes
    /// [`Session::run_spec_bytes`](column_caching::Session::run_spec_bytes) returns.
    pub bytes: String,
}

impl StoredResult {
    /// Wraps a result document, rendering its canonical bytes.
    pub fn new(doc: Json) -> Self {
        let bytes = doc.pretty();
        StoredResult { doc, bytes }
    }
}

/// A memoized failure, replayed to every requester of the same key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredError {
    /// The protocol error code (usually `job_failed` or `internal`).
    pub code: &'static str,
    /// The failure message.
    pub message: String,
}

/// What one computation produced.
pub type Outcome = Result<Arc<StoredResult>, Arc<StoredError>>;

/// The resolution of a [`ResultStore::claim`].
#[derive(Debug)]
pub enum Claim {
    /// The caller owns the key and must [`publish`](ResultStore::publish) or
    /// [`abandon`](ResultStore::abandon) it — everyone else is now waiting on it.
    Owner,
    /// The key was already computed (or in flight); here is the shared outcome.
    Done(Outcome),
}

/// Cache-effectiveness counters, exposed through `status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Claims served from a published or in-flight computation.
    pub hits: u64,
    /// Claims that started a computation (abandoned claims are subtracted back out,
    /// so this counts computations actually enqueued).
    pub misses: u64,
    /// Published outcomes currently held.
    pub entries: u64,
}

#[derive(Debug)]
enum Slot {
    InFlight,
    Done(Outcome),
}

#[derive(Debug, Default)]
struct State {
    slots: HashMap<String, Slot>,
    hits: u64,
    misses: u64,
}

/// A concurrent memo table keyed by canonical spec keys.
#[derive(Debug, Default)]
pub struct ResultStore {
    state: Mutex<State>,
    ready: Condvar,
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Claims `key`: the first claimant becomes [`Claim::Owner`]; later claimants
    /// block until the owner publishes (or abandons, in which case one of them is
    /// promoted to owner in turn) and receive [`Claim::Done`].
    pub fn claim(&self, key: &str) -> Claim {
        let mut st = self.state.lock().unwrap();
        loop {
            match st.slots.get(key) {
                None => {
                    st.slots.insert(key.to_owned(), Slot::InFlight);
                    st.misses += 1;
                    return Claim::Owner;
                }
                Some(Slot::Done(outcome)) => {
                    let outcome = outcome.clone();
                    st.hits += 1;
                    return Claim::Done(outcome);
                }
                Some(Slot::InFlight) => st = self.ready.wait(st).unwrap(),
            }
        }
    }

    /// Blocks until `key` is published; `None` if it was abandoned instead. The
    /// owner's wait — it does not touch the hit/miss counters.
    pub fn wait(&self, key: &str) -> Option<Outcome> {
        let mut st = self.state.lock().unwrap();
        loop {
            match st.slots.get(key) {
                None => return None,
                Some(Slot::Done(outcome)) => return Some(outcome.clone()),
                Some(Slot::InFlight) => st = self.ready.wait(st).unwrap(),
            }
        }
    }

    /// Publishes the outcome of `key`, waking every waiter.
    pub fn publish(&self, key: &str, outcome: Outcome) {
        let mut st = self.state.lock().unwrap();
        st.slots.insert(key.to_owned(), Slot::Done(outcome));
        self.ready.notify_all();
    }

    /// Abandons an in-flight `key` (its enqueue was refused): the slot is removed, the
    /// owner's miss is subtracted back out, and waiters wake to re-claim.
    pub fn abandon(&self, key: &str) {
        let mut st = self.state.lock().unwrap();
        if matches!(st.slots.get(key), Some(Slot::InFlight)) {
            st.slots.remove(key);
            st.misses = st.misses.saturating_sub(1);
            self.ready.notify_all();
        }
    }

    /// Current counters.
    pub fn counters(&self) -> StoreCounters {
        let st = self.state.lock().unwrap();
        StoreCounters {
            hits: st.hits,
            misses: st.misses,
            entries: st
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Done(_)))
                .count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_json::ToJson;
    use std::sync::Arc as StdArc;

    fn result(text: &str) -> Outcome {
        Ok(StdArc::new(StoredResult::new(text.to_json())))
    }

    #[test]
    fn one_owner_many_hits() {
        let store = StdArc::new(ResultStore::new());
        assert!(matches!(store.claim("k"), Claim::Owner));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let s = StdArc::clone(&store);
                std::thread::spawn(move || match s.claim("k") {
                    Claim::Done(Ok(r)) => r.bytes.clone(),
                    other => panic!("expected a shared result, got {other:?}"),
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.publish("k", result("v"));
        for w in waiters {
            assert_eq!(w.join().unwrap(), "\"v\"");
        }
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.entries), (4, 1, 1));
    }

    #[test]
    fn abandon_promotes_a_waiter_to_owner() {
        let store = StdArc::new(ResultStore::new());
        assert!(matches!(store.claim("k"), Claim::Owner));
        let s = StdArc::clone(&store);
        let waiter = std::thread::spawn(move || s.claim("k"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.abandon("k");
        assert!(matches!(waiter.join().unwrap(), Claim::Owner));
        assert_eq!(store.counters().misses, 1, "abandon refunds the first miss");
    }

    #[test]
    fn failures_are_memoized_like_results() {
        let store = ResultStore::new();
        assert!(matches!(store.claim("k"), Claim::Owner));
        store.publish(
            "k",
            Err(StdArc::new(StoredError {
                code: "job_failed",
                message: "nope".into(),
            })),
        );
        match store.claim("k") {
            Claim::Done(Err(e)) => assert_eq!(e.message, "nope"),
            other => panic!("expected the memoized failure, got {other:?}"),
        }
    }
}
