//! The TCP layer: bind, accept, move frames — all protocol logic lives in
//! [`Service`].
//!
//! Threading model: one accept thread, one detached thread per connection, and
//! `config.workers` job workers sharing the service's bounded queue. Connection
//! threads block in [`Service::respond`] while their job computes; workers never touch
//! sockets. Shutdown closes the queue (pending jobs drain), wakes the accept loop with
//! a throwaway loopback connection, and joins the accept and worker threads.

use crate::frame::{read_frame, Frame};
use crate::service::{error_frame, Service};
use crate::{code, ServeConfig};
use ccache_json::Json;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// A running server: its bound address plus the handles needed to stop it.
///
/// Dropping the handle shuts the server down gracefully (drain, join); call
/// [`ServerHandle::shutdown`] to do so explicitly, or [`ServerHandle::wait`] to park
/// until some client sends the `shutdown` command.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds `config.host:config.port`, starts the worker pool and the accept loop.
///
/// # Errors
///
/// Fails if the address cannot be bound.
pub fn serve(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind((config.host.as_str(), config.port))?;
    let addr = listener.local_addr()?;
    let service = Arc::new(Service::new(config));
    let workers = (0..service.config().workers.max(1))
        .map(|i| {
            let service = Arc::clone(&service);
            thread::Builder::new()
                .name(format!("ccache-serve-worker-{i}"))
                .spawn(move || service.worker_loop())
                .expect("spawn worker thread")
        })
        .collect();
    let accept = {
        let service = Arc::clone(&service);
        thread::Builder::new()
            .name("ccache-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &service))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        service,
        accept: Some(accept),
        workers,
    })
}

/// Starts a loopback server shaped for tests — ephemeral port, quick workload scale,
/// debug commands enabled — after letting `tweak` adjust the configuration.
///
/// # Errors
///
/// Fails if the loopback address cannot be bound.
pub fn spawn_test_server(tweak: impl FnOnce(&mut ServeConfig)) -> io::Result<ServerHandle> {
    let mut config = ServeConfig {
        quick: true,
        debug_commands: true,
        ..ServeConfig::default()
    };
    tweak(&mut config);
    serve(config)
}

impl ServerHandle {
    /// The bound address — read the ephemeral port back from here after `port: 0`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The protocol engine behind this server (counters, shutdown state, `respond`).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Begins a graceful shutdown and blocks until in-flight jobs have drained and the
    /// accept and worker threads have joined.
    pub fn shutdown(&mut self) {
        self.service.begin_shutdown();
        self.finish();
    }

    /// Parks until a client's `shutdown` command (or another thread's
    /// [`Service::begin_shutdown`]) starts a shutdown, then drains and joins — the
    /// `ccache serve` foreground loop.
    pub fn wait(mut self) {
        self.service.wait_shutdown();
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(accept) = self.accept.take() {
            // The accept thread is parked in accept(); poke it awake so it can observe
            // the shutdown flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.cleanup();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.service.is_shutting_down() {
            self.service.begin_shutdown();
        }
        self.finish(); // idempotent: both handle stores are emptied by the first call
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if service.is_shutting_down() {
                    break; // the wake-up poke from finish(), or a post-shutdown client
                }
                let service = Arc::clone(service);
                let _ = thread::Builder::new()
                    .name("ccache-serve-conn".to_owned())
                    .spawn(move || handle_connection(&service, stream));
            }
            Err(_) => {
                if service.is_shutting_down() {
                    break;
                }
            }
        }
    }
}

fn handle_connection(service: &Arc<Service>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(service.config().read_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let max_frame = service.config().max_frame_bytes;
    loop {
        match read_frame(&mut reader, max_frame) {
            // Transport errors and read-timeout expiry both end the connection
            // cleanly — for the client that is an orderly EOF, not a reset.
            Err(_) | Ok(Frame::Eof) => break,
            Ok(Frame::Oversized) => {
                let reply = error_frame(
                    &Json::Null,
                    code::OVERSIZED_FRAME,
                    &format!("the frame exceeds the {max_frame}-byte limit"),
                );
                let _ = write_frame(&mut writer, &reply);
                break;
            }
            Ok(Frame::Line(line)) => {
                let mut write_ok = true;
                let keep_open = {
                    let writer = &mut writer;
                    let write_ok = &mut write_ok;
                    let mut emit = move |doc: &Json| {
                        if *write_ok && write_frame(writer, doc).is_err() {
                            *write_ok = false;
                        }
                    };
                    service.respond(&line, &mut emit)
                };
                if !keep_open || !write_ok {
                    break;
                }
            }
        }
    }
}

fn write_frame(writer: &mut TcpStream, doc: &Json) -> io::Result<()> {
    let mut text = doc.compact();
    text.push('\n');
    writer.write_all(text.as_bytes())
}
