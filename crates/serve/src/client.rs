//! A minimal blocking client for the serve protocol.
//!
//! One document per line in each direction; see the crate docs for the frame shapes.
//! The CLI's `ccache serve --connect` mode and the test suite are both built on this.

use ccache_json::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking NDJSON connection to a serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sets the client-side read timeout for [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request frame (the document, compact-rendered, plus `\n`).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, doc: &Json) -> io::Result<()> {
        let mut text = doc.compact();
        text.push('\n');
        self.writer.write_all(text.as_bytes())
    }

    /// Sends raw bytes exactly as given — the protocol-robustness tests use this to
    /// deliver malformed, truncated and unterminated frames.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Half-closes the write side, signalling EOF to the server while replies can
    /// still be read.
    ///
    /// # Errors
    ///
    /// Propagates shutdown failures.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// Receives one raw reply line (without the newline); `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Propagates read failures (including a client-side read timeout).
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Receives one reply document; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Read failures, plus `InvalidData` if the server sends an unparsable line.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        match self.recv_line()? {
            None => Ok(None),
            Some(line) => Json::parse(&line)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Sends `doc` and returns the final reply, discarding any `event` frames
    /// streamed before it.
    ///
    /// # Errors
    ///
    /// Transport failures, plus `UnexpectedEof` if the server closes before replying.
    pub fn request(&mut self, doc: &Json) -> io::Result<Json> {
        Ok(self.request_streaming(doc)?.1)
    }

    /// Sends `doc` and collects `(event frames, final reply)`.
    ///
    /// # Errors
    ///
    /// Transport failures, plus `UnexpectedEof` if the server closes before replying.
    pub fn request_streaming(&mut self, doc: &Json) -> io::Result<(Vec<Json>, Json)> {
        self.send(doc)?;
        let mut events = Vec::new();
        loop {
            match self.recv()? {
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "the server closed before replying",
                    ))
                }
                Some(frame) if frame.get("event").is_some() => events.push(frame),
                Some(frame) => return Ok((events, frame)),
            }
        }
    }
}
