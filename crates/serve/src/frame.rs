//! Bounded reading of newline-delimited frames.
//!
//! One frame is one `\n`-terminated line. The reader enforces the configured frame
//! limit *while* reading, so a client sending an endless line can never make the
//! server buffer unbounded input — the oversized verdict arrives as soon as the limit
//! is crossed, without draining the rest of the line.

use std::io::{self, BufRead};

/// The outcome of one read attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// The peer closed the connection with no pending bytes.
    Eof,
    /// The line exceeded the frame limit; the caller should reply `oversized_frame`
    /// and close (the remainder of the line is deliberately not consumed).
    Oversized,
    /// One frame, with the trailing `\n` (and `\r`, if any) stripped. May be empty —
    /// blank lines are valid keep-alives the service ignores.
    Line(Vec<u8>),
}

/// Reads one frame from `reader`, buffering at most `max_bytes` of it.
///
/// A final unterminated line before EOF is returned as a normal frame; the following
/// call reports [`Frame::Eof`].
///
/// # Errors
///
/// Propagates transport errors, including read-timeout expiry (`WouldBlock` /
/// `TimedOut`), which the connection layer treats as a clean idle close.
pub fn read_frame<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(line)
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(at) => {
                if line.len() + at > max_bytes {
                    return Ok(Frame::Oversized);
                }
                line.extend_from_slice(&buf[..at]);
                reader.consume(at + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Frame::Line(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > max_bytes {
                    return Ok(Frame::Oversized);
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8], max: usize) -> Vec<Frame> {
        let mut reader = BufReader::with_capacity(4, input);
        let mut out = Vec::new();
        loop {
            let frame = read_frame(&mut reader, max).unwrap();
            let done = matches!(frame, Frame::Eof | Frame::Oversized);
            out.push(frame);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_reports_eof() {
        assert_eq!(
            frames(b"a\nbb\r\n\nccc", 100),
            vec![
                Frame::Line(b"a".to_vec()),
                Frame::Line(b"bb".to_vec()),
                Frame::Line(Vec::new()),
                Frame::Line(b"ccc".to_vec()), // unterminated trailer still counts
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn oversized_lines_stop_early_even_unterminated() {
        assert_eq!(frames(b"0123456789", 4), vec![Frame::Oversized]);
        assert_eq!(
            frames(b"ok\n0123456789\n", 4),
            vec![Frame::Line(b"ok".to_vec()), Frame::Oversized]
        );
    }

    #[test]
    fn limit_is_inclusive_of_exact_fit() {
        assert_eq!(
            frames(b"1234\n", 4),
            vec![Frame::Line(b"1234".to_vec()), Frame::Eof]
        );
    }
}
