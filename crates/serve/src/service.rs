//! The protocol engine: parse one request frame, do the work, emit reply frames.
//!
//! [`Service`] is deliberately socket-free — [`Service::respond`] maps one raw frame to
//! zero or more reply documents through a caller-provided sink, and the TCP layer in
//! [`server`](crate::server) only moves bytes. The protocol tests drive `respond`
//! through real loopback connections *and* assert on the service's counters directly.
//!
//! Compute commands (`replay`, `tune`, `run`) all compile to an
//! [`ExperimentSpec`] and share one path: claim the canonical key in the
//! [`ResultStore`], enqueue on the bounded [`JobQueue`] if owning, block until the
//! outcome is published, reply with the memoized artefact. `subscribe` is the one
//! command that bypasses the queue: it replays on the connection's own thread so it can
//! stream observer windows live.

use crate::queue::{JobQueue, SubmitError};
use crate::store::{Claim, ResultStore, StoreCounters, StoredError, StoredResult};
use crate::ServeConfig;
use ccache_core::observe::{ReplayEvent, ReplayObserver, WindowSample};
use ccache_exp::ExperimentSpec;
use ccache_json::{Json, ToJson};
use ccache_opt::{GenerationPoint, StrategyKind, TuneProgress, TuneRequest};
use ccache_telemetry::{bucket_of, Counter, Gauge, Registry};
use column_caching::Session;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The structured error codes a reply's `error.code` field can carry.
pub mod code {
    /// The frame was not valid UTF-8, not valid JSON, or not a JSON object. The
    /// connection survives.
    pub const BAD_FRAME: &str = "bad_frame";
    /// The frame exceeded `max_frame_bytes`; the connection closes after the reply.
    pub const OVERSIZED_FRAME: &str = "oversized_frame";
    /// The request was well-formed JSON but semantically invalid (unknown command,
    /// unknown workload, malformed spec, …). The connection survives.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The job queue is full; the request was shed without computing. Retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and accepts no new jobs.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job executed and failed; the failure is memoized like a result.
    pub const JOB_FAILED: &str = "job_failed";
    /// A worker panicked or an internal invariant broke.
    pub const INTERNAL: &str = "internal";
}

/// Per-tenant request counters, exposed under `status.tenants`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Frames attributed to the tenant (valid JSON objects, any command).
    pub requests: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Compute requests served from the result store.
    pub cache_hits: u64,
    /// Compute requests that started a computation.
    pub cache_misses: u64,
}

impl ToJson for TenantCounters {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", self.requests.to_json()),
            ("errors", self.errors.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
        ])
    }
}

/// A queued unit of work.
pub(crate) struct Job {
    key: String,
    task: Task,
}

enum Task {
    /// Run an experiment spec through a session (the normal case).
    Spec {
        session: Box<Session>,
        spec: Box<ExperimentSpec>,
    },
    /// Occupy a worker for a fixed time (`debug_sleep`, lifecycle tests only).
    DebugSleep(Duration),
}

#[derive(Debug)]
struct Upload {
    path: PathBuf,
    events: u64,
}

/// A successful dispatch: the `result` document, and whether to close afterwards.
struct Reply {
    result: Json,
    close: bool,
}

impl Reply {
    fn keep(result: Json) -> Self {
        Reply {
            result,
            close: false,
        }
    }
}

/// A refused request: code + message for the error frame. Refusals never close the
/// connection — every recoverable error leaves the client free to try again.
struct Refusal {
    code: &'static str,
    message: String,
}

impl Refusal {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Refusal {
            code,
            message: message.into(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Refusal::new(code::BAD_REQUEST, message)
    }
}

/// Builds a success frame: `{"id":…,"ok":true,"result":…}`.
pub fn ok_frame(id: &Json, result: Json) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", true.to_json()),
        ("result", result),
    ])
}

/// Builds an error frame: `{"id":…,"ok":false,"error":{"code":…,"message":…}}`.
pub fn error_frame(id: &Json, code: &str, message: &str) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", false.to_json()),
        (
            "error",
            Json::obj([("code", code.to_json()), ("message", message.to_json())]),
        ),
    ])
}

static UPLOAD_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Pre-resolved handles for the service's own registry cells (the hot-path ones;
/// per-tenant and per-verb counters are resolved by name on demand).
struct ServeTelemetry {
    /// `serve.queue.depth` — jobs queued, not yet running.
    queue_depth: Gauge,
    /// `serve.workers.busy` — workers currently executing a job.
    workers_busy: Gauge,
    /// `serve.store.claims` — result-store claims attempted (hit or owner).
    store_claims: Counter,
    /// `serve.store.publishes` — outcomes published by workers.
    store_publishes: Counter,
    /// `serve.store.abandons` — claims released without publishing (shed/closed).
    store_abandons: Counter,
}

impl ServeTelemetry {
    fn bind(registry: &Registry) -> Self {
        ServeTelemetry {
            queue_depth: registry.gauge("serve.queue.depth"),
            workers_busy: registry.gauge("serve.workers.busy"),
            store_claims: registry.counter("serve.store.claims"),
            store_publishes: registry.counter("serve.store.publishes"),
            store_abandons: registry.counter("serve.store.abandons"),
        }
    }
}

/// The serve engine: the bounded queue, the content-addressed result store, uploaded
/// traces, the telemetry registry, and the shutdown latch. One `Service` is shared by
/// every connection thread and every worker of a server.
pub struct Service {
    config: ServeConfig,
    store: ResultStore,
    queue: JobQueue<Job>,
    uploads: Mutex<BTreeMap<String, Upload>>,
    telemetry: Registry,
    metrics: ServeTelemetry,
    started: Instant,
    log: Mutex<Option<Box<dyn Write + Send>>>,
    executed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    running: AtomicU64,
    shutting_down: AtomicBool,
    shutdown_latch: Mutex<bool>,
    shutdown_signal: Condvar,
    upload_dir: PathBuf,
    debug_seq: AtomicU64,
}

impl Service {
    /// Creates the engine for `config`. The TCP layer ([`crate::serve`]) does this for
    /// you; constructing a bare `Service` is useful for socket-free protocol tests.
    pub fn new(config: ServeConfig) -> Self {
        let upload_dir = std::env::temp_dir().join(format!(
            "ccache-serve-{}-{}",
            std::process::id(),
            UPLOAD_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Each service gets a private registry: worker sessions report into it, so the
        // `metrics` verb sees engine/opt/exp numbers for this server only.
        let telemetry = Registry::new();
        let metrics = ServeTelemetry::bind(&telemetry);
        let log: Option<Box<dyn Write + Send>> = if config.log_ndjson {
            Some(Box::new(std::io::stderr()))
        } else {
            None
        };
        Service {
            queue: JobQueue::new(config.queue_depth),
            config,
            store: ResultStore::new(),
            uploads: Mutex::new(BTreeMap::new()),
            telemetry,
            metrics,
            started: Instant::now(),
            log: Mutex::new(log),
            executed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            running: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            shutdown_latch: Mutex::new(false),
            shutdown_signal: Condvar::new(),
            upload_dir,
            debug_seq: AtomicU64::new(0),
        }
    }

    /// The configuration the service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The service's telemetry registry: every worker session, engine and tuner of
    /// this server reports into it, and the `metrics` verb snapshots it.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Redirects (or disables) the NDJSON request log, regardless of
    /// [`ServeConfig::log_ndjson`]. Tests use this to capture the stream.
    pub fn set_log_writer(&self, writer: Option<Box<dyn Write + Send>>) {
        *self.log.lock().unwrap() = writer;
    }

    /// Milliseconds since the service was constructed (the `status` verb's
    /// `uptime_ms`).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Result-store counters (hits, misses, entries) — the dedup evidence the
    /// concurrency tests assert on.
    pub fn cache_counters(&self) -> StoreCounters {
        self.store.counters()
    }

    /// Jobs a worker finished successfully.
    pub fn jobs_executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests shed with `overloaded`.
    pub fn jobs_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Whether [`Service::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Starts a graceful shutdown: new jobs are refused with `shutting_down`, queued
    /// jobs still drain, and [`Service::wait_shutdown`] unblocks.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue.close();
        *self.shutdown_latch.lock().unwrap() = true;
        self.shutdown_signal.notify_all();
    }

    /// Blocks until a shutdown begins (from any connection's `shutdown` command or
    /// from [`Service::begin_shutdown`]).
    pub fn wait_shutdown(&self) {
        let mut latch = self.shutdown_latch.lock().unwrap();
        while !*latch {
            latch = self.shutdown_signal.wait(latch).unwrap();
        }
    }

    /// Removes the upload directory (called once the worker pool has drained).
    pub(crate) fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(&self.upload_dir);
    }

    /// The worker-pool body: pop, execute, publish — until close-and-drain. Worker
    /// panics are caught and published as memoized `internal` failures, so a poisoned
    /// job can never wedge its waiters or kill the pool.
    pub fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            self.running.fetch_add(1, Ordering::SeqCst);
            self.metrics.queue_depth.set(self.queue.len() as u64);
            self.metrics.workers_busy.add(1);
            let outcome = match job.task {
                Task::DebugSleep(pause) => {
                    std::thread::sleep(pause);
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    Ok(Arc::new(StoredResult::new(Json::obj([(
                        "slept_ms",
                        (pause.as_millis() as u64).to_json(),
                    )]))))
                }
                Task::Spec { session, spec } => {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| session.run_spec(&spec))) {
                        Ok(Ok(artefact)) => {
                            self.executed.fetch_add(1, Ordering::Relaxed);
                            Ok(Arc::new(StoredResult::new(artefact.to_json())))
                        }
                        Ok(Err(e)) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            Err(Arc::new(StoredError {
                                code: code::JOB_FAILED,
                                message: e.to_string(),
                            }))
                        }
                        Err(_) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            Err(Arc::new(StoredError {
                                code: code::INTERNAL,
                                message: "the job panicked".to_owned(),
                            }))
                        }
                    }
                }
            };
            // Counted before the publish wakes waiters, so a `metrics` request sent
            // right after a job's reply already sees its publish.
            self.metrics.store_publishes.incr();
            self.store.publish(&job.key, outcome);
            self.metrics.workers_busy.sub(1);
            self.running.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Handles one raw frame: parses it, runs the command, and emits every reply frame
    /// through `emit`. Returns `false` when the connection should close (a `shutdown`
    /// reply); every error — malformed frames included — is a structured reply that
    /// keeps the connection open.
    pub fn respond(&self, raw: &[u8], emit: &mut (dyn FnMut(&Json) + Send)) -> bool {
        let start = Instant::now();
        // Telemetry and the request log are recorded *before* the reply is emitted:
        // the moment a client sees a reply, every record for that request exists (the
        // determinism suite snapshots registries right after its final reply).
        let Ok(text) = std::str::from_utf8(raw) else {
            self.finish_request("anonymous", "invalid", code::BAD_FRAME, start);
            emit(&error_frame(
                &Json::Null,
                code::BAD_FRAME,
                "frame is not valid UTF-8",
            ));
            return true;
        };
        if text.trim().is_empty() {
            return true; // blank keep-alive line
        }
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => {
                self.finish_request("anonymous", "invalid", code::BAD_FRAME, start);
                emit(&error_frame(
                    &Json::Null,
                    code::BAD_FRAME,
                    &format!("frame is not valid JSON: {e}"),
                ));
                return true;
            }
        };
        if doc.as_obj().is_none() {
            self.finish_request("anonymous", "invalid", code::BAD_FRAME, start);
            emit(&error_frame(
                &Json::Null,
                code::BAD_FRAME,
                "a request frame must be a JSON object",
            ));
            return true;
        }
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anonymous")
            .to_owned();
        let verb = known_verb(doc.get("cmd").and_then(Json::as_str));
        self.telemetry.counter(&format!("serve.verb.{verb}")).incr();
        self.tenant_incr(&tenant, "requests");
        match self.dispatch(&doc, &id, &tenant, emit) {
            Ok(reply) => {
                self.finish_request(&tenant, verb, "ok", start);
                emit(&ok_frame(&id, reply.result));
                !reply.close
            }
            Err(refusal) => {
                self.tenant_incr(&tenant, "errors");
                self.finish_request(&tenant, verb, refusal.code, start);
                emit(&error_frame(&id, refusal.code, &refusal.message));
                true
            }
        }
    }

    /// Per-request epilogue: the latency histogram and (when enabled) one NDJSON log
    /// record. The duration only ever feeds quarantined timing cells and the log
    /// stream — never a deterministic counter.
    fn finish_request(&self, tenant: &str, verb: &str, outcome: &str, start: Instant) {
        let micros = start.elapsed().as_micros() as u64;
        self.telemetry
            .histogram(&format!("serve.request.{verb}"))
            .record(micros);
        let mut log = self.log.lock().unwrap();
        if let Some(writer) = log.as_mut() {
            let record = Json::obj([
                ("tenant", tenant.to_json()),
                ("cmd", verb.to_json()),
                ("outcome", outcome.to_json()),
                ("duration_us", micros.to_json()),
                ("duration_log2_us", (bucket_of(micros) as u64).to_json()),
            ])
            .compact();
            let _ = writeln!(writer, "{record}");
        }
    }

    fn dispatch(
        &self,
        doc: &Json,
        id: &Json,
        tenant: &str,
        emit: &mut (dyn FnMut(&Json) + Send),
    ) -> Result<Reply, Refusal> {
        let cmd = doc
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| Refusal::bad_request("the request needs a string 'cmd'"))?;
        match cmd {
            "status" => Ok(Reply::keep(self.status_doc())),
            "metrics" => Ok(Reply::keep(self.telemetry.snapshot())),
            "upload" => self.cmd_upload(doc),
            "run" => self.cmd_run(doc, tenant),
            "replay" => self.cmd_grid(doc, tenant, None),
            "tune" => {
                let tuned: Vec<(String, Json)> = ["strategy", "budget", "seed"]
                    .iter()
                    .filter_map(|k| doc.get(k).map(|v| (k.to_string(), v.clone())))
                    .collect();
                let policy = Json::obj([("tuned", Json::Obj(tuned))]);
                self.cmd_grid(doc, tenant, Some(policy))
            }
            "subscribe" => self.cmd_subscribe(doc, id, emit),
            "shutdown" => {
                let draining = self.queue.len();
                self.begin_shutdown();
                Ok(Reply {
                    result: Json::obj([("draining", draining.to_json())]),
                    close: true,
                })
            }
            "debug_sleep" if self.config.debug_commands => self.cmd_debug_sleep(doc, tenant),
            other => Err(Refusal::bad_request(format!(
                "unknown cmd '{other}' (expected replay, run, tune, upload, subscribe, \
                 status, metrics or shutdown)"
            ))),
        }
    }

    // ------------------------------------------------------------------ commands

    /// `replay` and `tune`: synthesize a one-grid spec document from the request's
    /// fields and feed it through the same validated [`ExperimentSpec::from_json`]
    /// path inline `run` specs use, then through the shared memoized compute path.
    fn cmd_grid(&self, doc: &Json, tenant: &str, policy: Option<Json>) -> Result<Reply, Refusal> {
        let workload = match (doc.get("workload"), doc.get("trace")) {
            (Some(w), None) => w.clone(),
            (None, Some(t)) => Json::obj([("trace", t.clone())]),
            _ => {
                return Err(Refusal::bad_request(
                    "the request needs exactly one of 'workload' (a corpus name) or \
                     'trace' (an uploaded name or server-side path)",
                ))
            }
        };
        let mut grid: Vec<(String, Json)> =
            vec![("workloads".to_owned(), Json::Arr(vec![workload]))];
        if let Some(backend) = doc.get("backend") {
            grid.push(("backends".to_owned(), Json::Arr(vec![backend.clone()])));
        }
        if let Some(geometry) = doc.get("geometry") {
            grid.push(("geometries".to_owned(), Json::Arr(vec![geometry.clone()])));
        }
        match (policy, doc.get("policy")) {
            (Some(tuned), _) => grid.push(("policies".to_owned(), Json::Arr(vec![tuned]))),
            (None, Some(p)) => grid.push(("policies".to_owned(), Json::Arr(vec![p.clone()]))),
            (None, None) => {}
        }
        let spec_doc = Json::obj([
            ("name", "serve-grid".to_json()),
            ("replay", Json::Arr(vec![Json::Obj(grid)])),
        ]);
        self.run_spec_doc(spec_doc, doc, tenant)
    }

    /// `run`: an inline spec document, exactly the `ccache run` file format.
    fn cmd_run(&self, doc: &Json, tenant: &str) -> Result<Reply, Refusal> {
        let spec_doc = doc
            .get("spec")
            .cloned()
            .ok_or_else(|| Refusal::bad_request("run needs a 'spec' object"))?;
        self.run_spec_doc(spec_doc, doc, tenant)
    }

    fn run_spec_doc(&self, mut spec_doc: Json, doc: &Json, tenant: &str) -> Result<Reply, Refusal> {
        self.rewrite_uploads(&mut spec_doc);
        let spec = ExperimentSpec::from_json(&spec_doc)
            .map_err(|e| Refusal::bad_request(e.to_string()))?;
        let session = self.session_for(doc)?;
        let key = session.spec_key(&spec);
        let stored = self.submit_job(tenant, key, || Task::Spec {
            session: Box::new(session),
            spec: Box::new(spec),
        })?;
        Ok(Reply::keep(stored.doc.clone()))
    }

    /// The shared memoized compute path — see the module docs for the claim/enqueue/
    /// wait choreography.
    fn submit_job(
        &self,
        tenant: &str,
        key: String,
        task: impl FnOnce() -> Task,
    ) -> Result<Arc<StoredResult>, Refusal> {
        if self.is_shutting_down() {
            return Err(Refusal::new(
                code::SHUTTING_DOWN,
                "the server is draining and accepts no new jobs",
            ));
        }
        self.metrics.store_claims.incr();
        let outcome = match self.store.claim(&key) {
            Claim::Done(outcome) => {
                self.tenant_incr(tenant, "cache_hits");
                outcome
            }
            Claim::Owner => match self.queue.submit(Job {
                key: key.clone(),
                task: task(),
            }) {
                Ok(()) => {
                    self.tenant_incr(tenant, "cache_misses");
                    self.metrics.queue_depth.set(self.queue.len() as u64);
                    self.store.wait(&key).ok_or_else(|| {
                        Refusal::new(code::INTERNAL, "the computation was abandoned")
                    })?
                }
                Err(SubmitError::Full) => {
                    self.store.abandon(&key);
                    self.metrics.store_abandons.incr();
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(Refusal::new(
                        code::OVERLOADED,
                        format!(
                            "the job queue is full ({} pending jobs); retry later",
                            self.config.queue_depth
                        ),
                    ));
                }
                Err(SubmitError::Closed) => {
                    self.store.abandon(&key);
                    self.metrics.store_abandons.incr();
                    return Err(Refusal::new(
                        code::SHUTTING_DOWN,
                        "the server is draining and accepts no new jobs",
                    ));
                }
            },
        };
        outcome.map_err(|e| Refusal::new(e.code, e.message.clone()))
    }

    /// `upload`: store a text-format trace under a name usable as `{"trace": NAME}`.
    fn cmd_upload(&self, doc: &Json) -> Result<Reply, Refusal> {
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| Refusal::bad_request("upload needs a string 'name'"))?;
        let valid = !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
        if !valid {
            return Err(Refusal::bad_request(
                "upload names may only use [A-Za-z0-9._-], at most 64 characters",
            ));
        }
        let text = doc
            .get("text")
            .and_then(Json::as_str)
            .ok_or_else(|| Refusal::bad_request("upload needs the text-format trace in 'text'"))?;
        let trace = ccache_trace::textfmt::read_trace(text.as_bytes())
            .map_err(|e| Refusal::bad_request(format!("the trace text does not parse: {e}")))?;
        if trace.is_empty() {
            return Err(Refusal::bad_request("the uploaded trace is empty"));
        }
        std::fs::create_dir_all(&self.upload_dir)
            .map_err(|e| Refusal::new(code::INTERNAL, format!("cannot store the trace: {e}")))?;
        let path = self.upload_dir.join(format!("{name}.trace"));
        std::fs::write(&path, text)
            .map_err(|e| Refusal::new(code::INTERNAL, format!("cannot store the trace: {e}")))?;
        let events = trace.len() as u64;
        self.uploads
            .lock()
            .unwrap()
            .insert(name.to_owned(), Upload { path, events });
        Ok(Reply::keep(Json::obj([
            ("name", name.to_json()),
            ("events", events.to_json()),
        ])))
    }

    /// `subscribe`: replay on this thread, streaming one `event` frame per observer
    /// window, then reply with the final statistics. Bypasses the queue and the store —
    /// a live stream is personal to its connection, not shareable cached bytes.
    fn cmd_subscribe(
        &self,
        doc: &Json,
        id: &Json,
        emit: &mut (dyn FnMut(&Json) + Send),
    ) -> Result<Reply, Refusal> {
        if self.is_shutting_down() {
            return Err(Refusal::new(
                code::SHUTTING_DOWN,
                "the server is draining and accepts no new jobs",
            ));
        }
        if let Some(tune) = doc.get("tune") {
            return self.cmd_subscribe_tune(doc, tune, id, emit);
        }
        let quick = self.quick_of(doc)?;
        let window = match doc.get("window") {
            None => 4096,
            Some(v) => v
                .as_u64()
                .filter(|w| *w > 0)
                .ok_or_else(|| Refusal::bad_request("'window' must be a positive integer"))?,
        };
        let backend = doc
            .get("backend")
            .map(|b| {
                b.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| Refusal::bad_request("'backend' must be a string"))
            })
            .transpose()?
            .unwrap_or_else(|| "column-cache".to_owned());
        let session = Session::builder()
            .quick(quick)
            .backend(backend)
            .telemetry(self.telemetry.clone())
            .build()
            .map_err(|e| Refusal::bad_request(e.to_string()))?;
        let (name, trace) = if let Some(w) = doc.get("workload").and_then(Json::as_str) {
            let run = ccache_workloads::corpus(w, quick).ok_or_else(|| {
                Refusal::bad_request(format!(
                    "unknown workload '{w}' (expected one of: {})",
                    ccache_workloads::CORPUS_NAMES.join(", ")
                ))
            })?;
            (run.name, run.trace)
        } else if let Some(t) = doc.get("trace").and_then(Json::as_str) {
            let path = self.upload_path(t).unwrap_or_else(|| PathBuf::from(t));
            let trace = load_trace(&path)
                .map_err(|e| Refusal::bad_request(format!("cannot load trace '{t}': {e}")))?;
            (t.to_owned(), trace)
        } else {
            return Err(Refusal::bad_request(
                "subscribe needs 'workload' (a corpus name) or 'trace' (an uploaded name)",
            ));
        };
        let mut streamer = Streamer {
            emit,
            id,
            windows: 0,
        };
        let result = session
            .replay_with(&name, &trace, window, &mut streamer)
            .map_err(|e| Refusal::new(code::JOB_FAILED, e.to_string()))?;
        let windows = streamer.windows;
        Ok(Reply::keep(Json::obj([
            ("workload", name.to_json()),
            ("window", window.to_json()),
            ("windows", windows.to_json()),
            ("result", result.to_json()),
        ])))
    }

    /// `subscribe` with a `"tune"` object: run a tuning search on this thread,
    /// streaming one `{"event":"generation"}` frame per completed search round, then
    /// reply with the full [`TuneOutcome`]. Like the replay form, it bypasses the
    /// queue and the store — a live stream is personal to its connection.
    fn cmd_subscribe_tune(
        &self,
        doc: &Json,
        tune: &Json,
        id: &Json,
        emit: &mut (dyn FnMut(&Json) + Send),
    ) -> Result<Reply, Refusal> {
        let quick = self.quick_of(doc)?;
        let session = Session::builder()
            .quick(quick)
            .telemetry(self.telemetry.clone())
            .build()
            .map_err(|e| Refusal::bad_request(e.to_string()))?;
        let (name, trace, symbols) = if let Some(w) = doc.get("workload").and_then(Json::as_str) {
            let run = ccache_workloads::corpus(w, quick).ok_or_else(|| {
                Refusal::bad_request(format!(
                    "unknown workload '{w}' (expected one of: {})",
                    ccache_workloads::CORPUS_NAMES.join(", ")
                ))
            })?;
            (run.name, run.trace, run.symbols)
        } else if let Some(t) = doc.get("trace").and_then(Json::as_str) {
            let path = self.upload_path(t).unwrap_or_else(|| PathBuf::from(t));
            let trace = load_trace(&path)
                .map_err(|e| Refusal::bad_request(format!("cannot load trace '{t}': {e}")))?;
            let config = session.config();
            let symbols = ccache_trace::infer::infer_symbols(
                &trace,
                config.page_size.max(4096),
                config.cache.line_size(),
            );
            (t.to_owned(), trace, symbols)
        } else {
            return Err(Refusal::bad_request(
                "subscribe needs 'workload' (a corpus name) or 'trace' (an uploaded name)",
            ));
        };
        let strategy = match tune.get("strategy") {
            None => StrategyKind::default(),
            Some(v) => {
                let raw = v
                    .as_str()
                    .ok_or_else(|| Refusal::bad_request("'strategy' must be a string"))?;
                StrategyKind::parse(raw)
                    .ok_or_else(|| Refusal::bad_request(format!("unknown strategy '{raw}'")))?
            }
        };
        let budget = match tune.get("budget") {
            None => 64,
            Some(v) => v
                .as_u64()
                .filter(|b| *b > 0)
                .ok_or_else(|| Refusal::bad_request("'budget' must be a positive integer"))?
                as usize,
        };
        let seed = match tune.get("seed") {
            None => TuneRequest::default().seed,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| Refusal::bad_request("'seed' must be an integer"))?,
        };
        let request = TuneRequest {
            template: *session.config(),
            geometry: ccache_opt::GeometrySearch::fixed(),
            strategy,
            budget,
            seed,
            ..TuneRequest::default()
        };
        let mut streamer = GenerationStreamer {
            emit,
            id,
            generations: 0,
        };
        let outcome = session
            .tune_with_progress(&trace, &symbols, &request, &mut streamer)
            .map_err(|e| Refusal::new(code::JOB_FAILED, e.to_string()))?;
        let generations = streamer.generations;
        Ok(Reply::keep(Json::obj([
            ("workload", name.to_json()),
            ("strategy", outcome.strategy.to_json()),
            ("generations", generations.to_json()),
            ("result", outcome.to_json()),
        ])))
    }

    /// `debug_sleep`: occupy one worker slot for `ms` milliseconds. Every call gets a
    /// fresh key, so sleeps are never deduplicated — they exist to pin workers and fill
    /// the queue deterministically in lifecycle tests.
    fn cmd_debug_sleep(&self, doc: &Json, tenant: &str) -> Result<Reply, Refusal> {
        let ms = match doc.get("ms") {
            None => 50,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| Refusal::bad_request("'ms' must be an integer"))?,
        };
        let seq = self.debug_seq.fetch_add(1, Ordering::Relaxed);
        let stored = self.submit_job(tenant, format!("debug-sleep:{seq}"), || {
            Task::DebugSleep(Duration::from_millis(ms))
        })?;
        Ok(Reply::keep(stored.doc.clone()))
    }

    fn status_doc(&self) -> Json {
        let cache = self.store.counters();
        let uploads = self.uploads.lock().unwrap();
        Json::obj([
            (
                "server",
                Json::obj([
                    ("protocol", 1u64.to_json()),
                    ("workers", self.config.workers.to_json()),
                    ("queue_depth", self.config.queue_depth.to_json()),
                    ("queued", self.queue.len().to_json()),
                    ("running", self.running.load(Ordering::SeqCst).to_json()),
                    ("quick", self.config.quick.to_json()),
                    ("shutting_down", self.is_shutting_down().to_json()),
                    ("uptime_ms", self.uptime_ms().to_json()),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("entries", cache.entries.to_json()),
                    ("hits", cache.hits.to_json()),
                    ("misses", cache.misses.to_json()),
                ]),
            ),
            (
                "jobs",
                Json::obj([
                    ("executed", self.executed.load(Ordering::Relaxed).to_json()),
                    ("failed", self.failed.load(Ordering::Relaxed).to_json()),
                    ("shed", self.shed.load(Ordering::Relaxed).to_json()),
                ]),
            ),
            (
                "verbs",
                Json::Obj(
                    self.telemetry
                        .counters_with_prefix("serve.verb.")
                        .into_iter()
                        .map(|(name, count)| {
                            let verb = name
                                .strip_prefix("serve.verb.")
                                .expect("prefix scan")
                                .to_owned();
                            (verb, count.to_json())
                        })
                        .collect(),
                ),
            ),
            (
                "uploads",
                Json::Obj(
                    uploads
                        .iter()
                        .map(|(name, up)| (name.clone(), up.events.to_json()))
                        .collect(),
                ),
            ),
            (
                "tenants",
                Json::Obj(
                    self.tenant_counters()
                        .into_iter()
                        .map(|(name, t)| (name, t.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    // ------------------------------------------------------------------ helpers

    fn quick_of(&self, doc: &Json) -> Result<bool, Refusal> {
        match doc.get("quick") {
            None => Ok(self.config.quick),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| Refusal::bad_request("'quick' must be a boolean")),
        }
    }

    /// The session a compute request runs under: per-request `quick` / `observe`
    /// overrides on top of the server defaults. Both knobs feed the canonical memo key
    /// through [`Session::spec_key`]; the telemetry routing does not (it never changes
    /// artefact bytes).
    fn session_for(&self, doc: &Json) -> Result<Session, Refusal> {
        let mut builder = Session::builder()
            .quick(self.quick_of(doc)?)
            .telemetry(self.telemetry.clone());
        if let Some(v) = doc.get("observe") {
            let window = v
                .as_u64()
                .filter(|w| *w > 0)
                .ok_or_else(|| Refusal::bad_request("'observe' must be a positive window"))?;
            builder = builder.observe(window);
        }
        builder
            .build()
            .map_err(|e| Refusal::bad_request(e.to_string()))
    }

    fn upload_path(&self, name: &str) -> Option<PathBuf> {
        self.uploads
            .lock()
            .unwrap()
            .get(name)
            .map(|up| up.path.clone())
    }

    /// Rewrites `{"trace": NAME}` workload selectors naming an uploaded trace to the
    /// stored file path, anywhere in a spec document.
    fn rewrite_uploads(&self, doc: &mut Json) {
        fn rewrite(node: &mut Json, uploads: &BTreeMap<String, Upload>) {
            match node {
                Json::Arr(items) => items.iter_mut().for_each(|i| rewrite(i, uploads)),
                Json::Obj(pairs) => {
                    for (key, value) in pairs.iter_mut() {
                        if key == "trace" {
                            if let Json::Str(name) = value {
                                if let Some(up) = uploads.get(name.as_str()) {
                                    *value = Json::Str(up.path.display().to_string());
                                }
                            }
                        }
                        rewrite(value, uploads);
                    }
                }
                _ => {}
            }
        }
        let uploads = self.uploads.lock().unwrap();
        if !uploads.is_empty() {
            rewrite(doc, &uploads);
        }
    }

    /// Bumps one per-tenant registry counter (`serve.tenant.<tenant>.<field>`). The
    /// registry replaces the hand-rolled `Mutex<BTreeMap<_, TenantCounters>>` the
    /// service used to carry; `status` reconstructs the same schema from these cells.
    fn tenant_incr(&self, tenant: &str, field: &str) {
        self.telemetry
            .counter(&format!("serve.tenant.{tenant}.{field}"))
            .incr();
    }

    /// Reassembles the per-tenant counters from the registry, sorted by tenant name —
    /// the exact table `status.tenants` always carried.
    pub fn tenant_counters(&self) -> BTreeMap<String, TenantCounters> {
        let mut tenants: BTreeMap<String, TenantCounters> = BTreeMap::new();
        for (name, value) in self.telemetry.counters_with_prefix("serve.tenant.") {
            let rest = name.strip_prefix("serve.tenant.").expect("prefix scan");
            let Some((tenant, field)) = rest.rsplit_once('.') else {
                continue;
            };
            let entry = tenants.entry(tenant.to_owned()).or_default();
            match field {
                "requests" => entry.requests = value,
                "errors" => entry.errors = value,
                "cache_hits" => entry.cache_hits = value,
                "cache_misses" => entry.cache_misses = value,
                _ => {}
            }
        }
        tenants
    }
}

/// Canonicalizes a request's `cmd` for metric names and the request log: known verbs
/// pass through, anything else (including a missing `cmd`) collapses to `unknown`, so
/// client-controlled strings can never mint unbounded registry cells.
fn known_verb(cmd: Option<&str>) -> &'static str {
    match cmd {
        Some("status") => "status",
        Some("metrics") => "metrics",
        Some("upload") => "upload",
        Some("run") => "run",
        Some("replay") => "replay",
        Some("tune") => "tune",
        Some("subscribe") => "subscribe",
        Some("shutdown") => "shutdown",
        Some("debug_sleep") => "debug_sleep",
        _ => "unknown",
    }
}

/// The `subscribe` observer: forwards every window (and replay event) as an `event`
/// frame on the requesting connection, tagged with the request's `id`.
struct Streamer<'a> {
    emit: &'a mut (dyn FnMut(&Json) + Send),
    id: &'a Json,
    windows: u64,
}

/// The `subscribe`+`tune` observer: forwards each completed search generation as a
/// `{"event":"generation"}` frame tagged with the request's `id`.
struct GenerationStreamer<'a> {
    emit: &'a mut (dyn FnMut(&Json) + Send),
    id: &'a Json,
    generations: u64,
}

impl TuneProgress for GenerationStreamer<'_> {
    fn on_generation(&mut self, point: &GenerationPoint) {
        self.generations += 1;
        (self.emit)(&Json::obj([
            ("id", self.id.clone()),
            ("event", "generation".to_json()),
            (
                "data",
                Json::obj([
                    ("generation", (point.generation as u64).to_json()),
                    ("replays", (point.replays as u64).to_json()),
                    (
                        "best",
                        Json::obj([
                            ("misses", point.best.misses.to_json()),
                            ("cycles", point.best.cycles.to_json()),
                            ("references", point.best.references.to_json()),
                            ("miss_rate", point.best.miss_rate.to_json()),
                        ]),
                    ),
                ]),
            ),
        ]));
    }
}

impl ReplayObserver for Streamer<'_> {
    fn on_window(&mut self, sample: &WindowSample) {
        self.windows += 1;
        (self.emit)(&Json::obj([
            ("id", self.id.clone()),
            ("event", "window".to_json()),
            ("sample", sample.to_json()),
        ]));
    }

    fn on_event(&mut self, event: &ReplayEvent) {
        (self.emit)(&Json::obj([
            ("id", self.id.clone()),
            ("event", "replay".to_json()),
            ("data", event.to_json()),
        ]));
    }
}

fn load_trace(path: &Path) -> std::io::Result<ccache_trace::Trace> {
    if ccache_trace::binfmt::is_binary_trace_file(path)? {
        ccache_trace::binfmt::read_trace(std::fs::File::open(path)?)
    } else {
        ccache_trace::textfmt::read_trace(BufReader::new(std::fs::File::open(path)?))
    }
}
