//! The bounded job queue between connection threads and the worker pool.
//!
//! Producers never block: a full queue refuses the submission so the connection can
//! shed load with a structured `overloaded` error instead of stalling. Consumers block
//! until an item arrives; after [`JobQueue::close`] the pending items still drain, so
//! graceful shutdown finishes every job that was accepted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the caller should shed load.
    Full,
    /// The queue is closed; the server is shutting down.
    Closed,
}

/// A bounded multi-producer multi-consumer FIFO queue.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` pending items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues one item without blocking.
    ///
    /// # Errors
    ///
    /// Refuses with [`SubmitError::Full`] at capacity and [`SubmitError::Closed`] after
    /// [`JobQueue::close`].
    pub fn submit(&self, item: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.items.len() >= st.capacity {
            return Err(SubmitError::Full);
        }
        st.items.push_back(item);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed *and* drained — the worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Closes the queue: new submissions are refused, pending items still drain.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Number of pending (accepted, not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_beyond_capacity_and_drains_after_close() {
        let q = JobQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        assert_eq!(q.submit(3), Err(SubmitError::Full));
        q.close();
        assert_eq!(q.submit(4), Err(SubmitError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(7u64).unwrap();
        assert_eq!(handle.join().unwrap(), Some(7));
    }
}
