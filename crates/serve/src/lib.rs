//! A concurrent cache-advisory service: newline-delimited JSON over TCP.
//!
//! The library crates decide cache policy for one caller at a time; this crate turns
//! them into a long-running system. A server ([`serve`]) owns a pool of
//! [`Session`](column_caching::Session)-driving worker threads behind a bounded job
//! queue, and any number of clients connect over TCP and exchange one JSON document per
//! line (the whole stack is `std::net` + `ccache-json`, so it builds offline).
//!
//! # Protocol in one paragraph
//!
//! A request is one line: a JSON object with a `"cmd"` field (`replay`, `run`, `tune`,
//! `upload`, `subscribe`, `status`, `metrics`, `shutdown`) plus command parameters, and optional
//! `"id"` (echoed verbatim into every reply frame) and `"tenant"` (counted in `status`)
//! fields. A reply is one line: `{"id":…,"ok":true,"result":…}` on success or
//! `{"id":…,"ok":false,"error":{"code":…,"message":…}}` on refusal; `subscribe`
//! additionally streams `{"id":…,"event":…}` frames while its replay runs. Compute
//! commands compile to [`ExperimentSpec`](ccache_exp::ExperimentSpec)s, so results are
//! the same schema-versioned artefacts `ccache run` writes — and they are memoized in a
//! content-addressed store keyed by [`Session::spec_key`](column_caching::Session::spec_key),
//! so identical concurrent submissions compute once and every caller gets byte-identical
//! bytes. See DESIGN.md's "Serve protocol" section for the full grammar.
//!
//! Production behaviours are first-class: bounded queue with structured `overloaded`
//! shedding (never a dropped connection), per-connection read timeouts, malformed-frame
//! tolerance (structured error, the connection survives), and graceful shutdown that
//! drains in-flight jobs. Everything protocol-level lives in [`Service`], which is
//! socket-free and driven directly by the test suite; [`spawn_test_server`] starts the
//! real TCP stack on an ephemeral loopback port for end-to-end tests.
//!
//! ```
//! use ccache_serve::{spawn_test_server, Client};
//! use ccache_json::{Json, ToJson};
//!
//! let mut server = spawn_test_server(|_| {})?;
//! let mut client = Client::connect(server.addr())?;
//! let reply = client.request(&Json::obj([("cmd", "status".to_json())]))?;
//! assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod queue;
pub mod server;
pub mod service;
pub mod store;

pub use client::Client;
pub use server::{serve, spawn_test_server, ServerHandle};
pub use service::{code, Service, TenantCounters};
pub use store::StoreCounters;

use std::time::Duration;

/// Configuration for [`serve`]. `ServeConfig::default()` is a production-shaped local
/// server; [`spawn_test_server`] layers the test defaults (ephemeral port, quick scale,
/// debug commands) on top.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// TCP port; `0` binds an ephemeral port (read it back from [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads executing queued jobs.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions are shed with a
    /// structured `overloaded` error.
    pub queue_depth: usize,
    /// Maximum size of one request frame; longer lines get an `oversized_frame` error
    /// and the connection closes (the server never buffers more than this per client).
    pub max_frame_bytes: usize,
    /// Per-connection read timeout; a connection idle past it is closed cleanly.
    pub read_timeout: Option<Duration>,
    /// Default workload scale for requests that do not set `"quick"` themselves.
    pub quick: bool,
    /// Enables the `debug_sleep` command (deterministic lifecycle tests only).
    pub debug_commands: bool,
    /// Emit one NDJSON record per handled request (tenant, verb, outcome, duration
    /// bucket) to stderr — `ccache serve --log ndjson`. Tests can redirect the stream
    /// with [`Service::set_log_writer`].
    pub log_ndjson: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            workers: 4,
            queue_depth: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: None,
            quick: false,
            debug_commands: false,
            log_ndjson: false,
        }
    }
}
