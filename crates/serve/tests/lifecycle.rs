//! Lifecycle behaviours: graceful shutdown drains in-flight work and refuses new jobs
//! with `shutting_down`; a full queue sheds with `overloaded` without stalling other
//! clients; an idle connection is closed cleanly at the read timeout.
//!
//! Determinism comes from the `debug_sleep` test command (each call occupies a worker
//! or queue slot for a fixed time under a fresh memo key) plus polling the `status`
//! counters (`running`, `queued`) instead of sleeping on guesses.

use ccache_json::{Json, ToJson};
use ccache_serve::{spawn_test_server, Client};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

fn status(addr: SocketAddr) -> Json {
    let mut client = Client::connect(addr).expect("connect for status");
    let reply = client
        .request(&Json::obj([("cmd", "status".to_json())]))
        .expect("status");
    reply.get("result").cloned().expect("status result")
}

/// Polls `status` until `pred` holds (5s cap — generous; the polls are cheap).
fn wait_for(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if pred(&status(addr)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

fn server_gauge(doc: &Json, field: &str) -> u64 {
    doc.get("server")
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap()
}

fn sleep_request(ms: u64) -> Json {
    Json::obj([("cmd", "debug_sleep".to_json()), ("ms", ms.to_json())])
}

fn error_code(frame: &Json) -> Option<String> {
    frame
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .map(str::to_owned)
}

#[test]
fn graceful_shutdown_drains_inflight_jobs_and_refuses_new_ones() {
    let mut server = spawn_test_server(|config| {
        config.workers = 1;
        config.queue_depth = 4;
    })
    .expect("bind test server");
    let addr = server.addr();

    // Pin the single worker, then queue one more job behind it.
    let running = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&sleep_request(400)).expect("reply")
    });
    wait_for(addr, "the worker to pick the job up", |doc| {
        server_gauge(doc, "running") == 1
    });
    let queued = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&sleep_request(100)).expect("reply")
    });
    wait_for(addr, "the second job to queue", |doc| {
        server_gauge(doc, "queued") == 1
    });

    // A connection established *before* the shutdown: it must stay served, and its
    // post-shutdown submissions must be refused with the structured code.
    let mut survivor = Client::connect(addr).expect("connect");

    let mut closer = Client::connect(addr).expect("connect");
    let reply = closer
        .request(&Json::obj([("cmd", "shutdown".to_json())]))
        .expect("shutdown reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert!(reply
        .get("result")
        .and_then(|r| r.get("draining"))
        .and_then(Json::as_u64)
        .is_some());
    // The shutdown reply is the connection's last frame.
    assert!(closer.recv().expect("clean close").is_none());

    let refused = survivor.request(&sleep_request(10)).expect("refusal reply");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&refused).as_deref(), Some("shutting_down"));

    // Both accepted jobs drained to completion despite the shutdown between them.
    let first = running.join().expect("running client");
    let second = queued.join().expect("queued client");
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
    assert_eq!(server.service().jobs_executed(), 2);
}

#[test]
fn full_queue_sheds_overloaded_without_stalling_other_clients() {
    let mut server = spawn_test_server(|config| {
        config.workers = 1;
        config.queue_depth = 1;
    })
    .expect("bind test server");
    let addr = server.addr();

    let running = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&sleep_request(400)).expect("reply")
    });
    wait_for(addr, "the worker to pick the job up", |doc| {
        server_gauge(doc, "running") == 1
    });
    let queued = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.request(&sleep_request(100)).expect("reply")
    });
    wait_for(addr, "the queue slot to fill", |doc| {
        server_gauge(doc, "queued") == 1
    });

    // Worker busy + queue full: the next submission is shed immediately...
    let mut shed_client = Client::connect(addr).expect("connect");
    let started = Instant::now();
    let refused = shed_client
        .request(&sleep_request(10))
        .expect("overload reply");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_code(&refused).as_deref(), Some("overloaded"));
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "shedding must not wait for capacity"
    );
    assert!(server.service().jobs_shed() >= 1);

    // ... and the shed request did not stall anyone: status answers, accepted jobs run.
    assert!(server_gauge(&status(addr), "running") == 1);
    assert_eq!(
        running
            .join()
            .expect("running client")
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        queued
            .join()
            .expect("queued client")
            .get("ok")
            .and_then(Json::as_bool),
        Some(true)
    );
    server.shutdown();
}

#[test]
fn idle_connections_close_cleanly_at_the_read_timeout() {
    let mut server = spawn_test_server(|config| {
        config.read_timeout = Some(Duration::from_millis(100));
    })
    .expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");

    // Active request inside the window: served normally.
    let reply = client
        .request(&Json::obj([("cmd", "status".to_json())]))
        .expect("status");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

    // Then going idle: the server closes with a clean EOF, not an error or a reset.
    let started = Instant::now();
    assert!(client.recv().expect("clean EOF").is_none());
    assert!(
        started.elapsed() >= Duration::from_millis(80),
        "the close should come from the timeout, not immediately"
    );
    server.shutdown();
}
