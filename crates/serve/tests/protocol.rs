//! Protocol robustness: randomized malformed, truncated and oversized frames against a
//! live loopback server. The invariant under test: every input yields a structured JSON
//! error or a clean close — never a panic, never a dropped connection on a recoverable
//! error — and the connection keeps serving valid requests afterwards.

use ccache_json::{Json, ToJson};
use ccache_serve::{spawn_test_server, Client};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

const MAX_FRAME: usize = 512;

/// One shared server for every property case: a panic anywhere in the server would
/// poison it and fail every subsequent case, so sharing doubles as a cross-case
/// no-panic detector. Leaked deliberately — process exit is its shutdown.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = spawn_test_server(|config| {
            config.max_frame_bytes = MAX_FRAME;
        })
        .expect("bind test server");
        let addr = server.addr();
        Box::leak(Box::new(server));
        addr
    })
}

fn connect() -> Client {
    let client = Client::connect(server_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    client
}

fn status_request() -> Json {
    Json::obj([("cmd", "status".to_json()), ("id", "probe".to_json())])
}

/// Asserts a reply frame is structurally sound: `ok` is a bool; refusals carry a
/// known `error.code` and a message.
fn assert_well_formed(frame: &Json) {
    let ok = frame
        .get("ok")
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("reply without a boolean 'ok': {}", frame.compact()));
    if !ok {
        let code = frame
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("refusal without error.code: {}", frame.compact()));
        assert!(
            [
                "bad_frame",
                "oversized_frame",
                "bad_request",
                "overloaded",
                "shutting_down",
                "job_failed",
                "internal",
            ]
            .contains(&code),
            "unknown error code '{code}'"
        );
        assert!(
            frame
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .is_some(),
            "refusal without error.message: {}",
            frame.compact()
        );
    }
}

/// Drives garbage into a connection, then proves the connection (or at worst the
/// server) is still healthy by completing a status round trip.
fn garbage_then_probe(garbage: &[u8]) {
    let mut client = connect();
    client.send_raw(garbage).expect("write garbage");
    client.send(&status_request()).expect("write probe");
    // Read replies until the probe's answer. Every frame on the way must be a
    // well-formed structured error. A clean close is also legal (oversized garbage)
    // — in that case the probe is re-run on a fresh connection, proving the server
    // itself survived.
    let mut saw_probe_reply = false;
    while let Some(frame) = client.recv().expect("read reply") {
        assert_well_formed(&frame);
        if frame.get("id").and_then(Json::as_str) == Some("probe") {
            assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
            saw_probe_reply = true;
            break;
        }
    }
    if !saw_probe_reply {
        let mut fresh = connect();
        let reply = fresh.request(&status_request()).expect("probe after close");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    }
}

proptest! {
    #[test]
    fn random_bytes_never_panic_the_server(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bytes = bytes;
        bytes.push(b'\n');
        garbage_then_probe(&bytes);
    }

    #[test]
    fn truncated_requests_get_structured_errors(
        cut in 1usize..64,
        tail in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        // A valid request, truncated mid-document and optionally continued with noise.
        let full = r#"{"cmd":"replay","id":7,"workload":"fir","policy":"shared"}"#;
        let mut bytes: Vec<u8> = full.as_bytes()[..cut.min(full.len() - 1)].to_vec();
        bytes.extend_from_slice(&tail);
        bytes.push(b'\n');
        garbage_then_probe(&bytes);
    }

    #[test]
    fn oversized_frames_get_an_error_then_a_clean_close(
        extra in 1usize..4096,
        byte in any::<u8>(),
    ) {
        let mut client = connect();
        // One line strictly over the limit, of arbitrary (even non-UTF-8) content.
        let mut bytes = vec![byte.max(1); MAX_FRAME + extra];
        bytes.push(b'\n');
        client.send_raw(&bytes).expect("write oversized");
        let reply = client
            .recv()
            .expect("read reply")
            .expect("an oversized frame must be answered before closing");
        assert_well_formed(&reply);
        prop_assert_eq!(
            reply.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("oversized_frame")
        );
        // ... and then the connection closes cleanly (EOF, not a reset mid-frame).
        prop_assert!(client.recv().expect("clean close").is_none());
    }

    #[test]
    fn valid_json_non_requests_keep_the_connection_open(
        n in any::<u64>(),
        flip in any::<bool>(),
    ) {
        // Parses fine, but is not a valid request: a bare scalar or an object with no
        // 'cmd'. Must produce bad_frame/bad_request and leave the connection usable.
        let mut client = connect();
        let frame = if flip {
            n.to_json()
        } else {
            Json::obj([("id", n.to_json()), ("payload", "x".to_json())])
        };
        client.send(&frame).expect("write");
        let reply = client.recv().expect("read").expect("reply expected");
        assert_well_formed(&reply);
        prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        let probe = client.request(&status_request()).expect("probe on same conn");
        prop_assert_eq!(probe.get("ok").and_then(Json::as_bool), Some(true));
    }
}

#[test]
fn blank_lines_are_ignored_keepalives() {
    let mut client = connect();
    client.send_raw(b"\n\r\n\n").expect("write blanks");
    let reply = client.request(&status_request()).expect("probe");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn unknown_commands_name_the_valid_ones() {
    let mut client = connect();
    let reply = client
        .request(&Json::obj([("cmd", "frobnicate".to_json())]))
        .expect("reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    let message = reply
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(message.contains("replay") && message.contains("status"));
}
