//! End-to-end command round trips over a loopback server: inline `run` specs, trace
//! upload + replay-by-name, and the `subscribe` observer stream.

use ccache_json::{Json, ToJson};
use ccache_serve::{spawn_test_server, Client};
use std::fmt::Write as _;

#[test]
fn run_executes_inline_specs() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let spec = Json::parse(
        r#"{"name": "inline", "replay": [{"workloads": ["fir"],
            "policies": ["shared", "heuristic"], "label": "policy"}]}"#,
    )
    .unwrap();
    let reply = client
        .request(&Json::obj([
            ("cmd", "run".to_json()),
            ("id", 1u64.to_json()),
            ("spec", spec),
        ]))
        .expect("run reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let result = reply.get("result").unwrap();
    assert_eq!(
        result.get("artefact").and_then(Json::as_str),
        Some("ccache-exp")
    );
    assert_eq!(result.get("version").and_then(Json::as_u64), Some(1));
    assert_eq!(
        result
            .get("results")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2)
    );
    server.shutdown();
}

#[test]
fn uploaded_traces_replay_by_name_everywhere() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A small strided read/write pattern in the text trace format.
    let mut text = String::from("# synthetic upload\n");
    for i in 0..256u64 {
        writeln!(text, "R {:#x} 4", 0x1000 + (i % 64) * 16).unwrap();
        writeln!(text, "W {:#x} 4", 0x8000 + i * 4).unwrap();
    }
    let upload = client
        .request(&Json::obj([
            ("cmd", "upload".to_json()),
            ("name", "synthetic".to_json()),
            ("text", text.to_json()),
        ]))
        .expect("upload reply");
    assert_eq!(upload.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        upload
            .get("result")
            .and_then(|r| r.get("events"))
            .and_then(Json::as_u64),
        Some(512)
    );

    // The name now works as a workload selector in the grid commands...
    let replay = client
        .request(&Json::obj([
            ("cmd", "replay".to_json()),
            ("trace", "synthetic".to_json()),
        ]))
        .expect("replay reply");
    assert_eq!(replay.get("ok").and_then(Json::as_bool), Some(true));

    // ... in inline run specs ...
    let spec =
        Json::parse(r#"{"name": "uploaded", "replay": [{"workloads": [{"trace": "synthetic"}]}]}"#)
            .unwrap();
    let run = client
        .request(&Json::obj([("cmd", "run".to_json()), ("spec", spec)]))
        .expect("run reply");
    assert_eq!(run.get("ok").and_then(Json::as_bool), Some(true));

    // ... and in subscribe streams.
    let (events, done) = client
        .request_streaming(&Json::obj([
            ("cmd", "subscribe".to_json()),
            ("trace", "synthetic".to_json()),
            ("window", 128u64.to_json()),
        ]))
        .expect("subscribe");
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
    assert!(!events.is_empty(), "subscribe must stream window events");

    // Bad names are refused before touching the filesystem.
    let bad = client
        .request(&Json::obj([
            ("cmd", "upload".to_json()),
            ("name", "../escape".to_json()),
            ("text", "R 0x0 4\n".to_json()),
        ]))
        .expect("bad-name reply");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    server.shutdown();
}

#[test]
fn subscribe_streams_windows_then_the_final_statistics() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (events, done) = client
        .request_streaming(&Json::obj([
            ("cmd", "subscribe".to_json()),
            ("id", "sub-1".to_json()),
            ("workload", "fir".to_json()),
            ("window", 256u64.to_json()),
        ]))
        .expect("subscribe");
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
    let result = done.get("result").unwrap();
    let windows = result.get("windows").and_then(Json::as_u64).unwrap();
    let window_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("window"))
        .collect();
    assert_eq!(window_events.len() as u64, windows);
    assert!(windows > 0);
    // Every event frame carries the request id and a well-formed sample.
    let mut references = 0;
    for event in &window_events {
        assert_eq!(event.get("id").and_then(Json::as_str), Some("sub-1"));
        let sample = event.get("sample").expect("window sample");
        references += sample.get("references").and_then(Json::as_u64).unwrap();
    }
    // The streamed windows tile the replay exactly.
    assert_eq!(
        Some(references),
        result
            .get("result")
            .and_then(|r| r.get("references"))
            .and_then(Json::as_u64)
    );
    server.shutdown();
}
