//! The observability surface of the service: the `metrics` verb, registry-backed
//! `status` fields, streamed tuning progress, and the NDJSON request log.

use ccache_json::{Json, ToJson};
use ccache_serve::{spawn_test_server, Client};
use std::sync::{Arc, Mutex};

/// A `Write` sink tests can read back: the NDJSON log goes into a shared buffer.
struct SharedLog(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedLog {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn counter(snapshot: &Json, name: &str) -> u64 {
    snapshot
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// One server, one client, compute through every layer — then `metrics` must show
/// engine, tuner, executor and server cells in a single snapshot.
#[test]
fn metrics_snapshot_covers_every_layer() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let replay = client
        .request(&Json::obj([
            ("cmd", "replay".to_json()),
            ("workload", "fir".to_json()),
        ]))
        .expect("replay reply");
    assert_eq!(replay.get("ok").and_then(Json::as_bool), Some(true));
    let tune = client
        .request(&Json::obj([
            ("cmd", "tune".to_json()),
            ("workload", "fir".to_json()),
            ("budget", 4u64.to_json()),
        ]))
        .expect("tune reply");
    assert_eq!(tune.get("ok").and_then(Json::as_bool), Some(true));

    let reply = client
        .request(&Json::obj([("cmd", "metrics".to_json())]))
        .expect("metrics reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let snap = reply.get("result").expect("snapshot result");
    assert_eq!(
        snap.get("telemetry").and_then(Json::as_str),
        Some("ccache-telemetry")
    );
    assert_eq!(snap.get("version").and_then(Json::as_u64), Some(1));

    // Engine layer (worker sessions bind the service registry)...
    assert!(counter(snap, "engine.replays") >= 1);
    assert!(counter(snap, "engine.batches") >= 1);
    // ... tuner layer (the tune job streams evaluator counts into the same registry)...
    assert!(counter(snap, "opt.evaluations") >= 1);
    assert!(counter(snap, "opt.generations") >= 1);
    // ... executor layer (every job runs under an exp.job span)...
    assert!(
        snap.get("spans")
            .and_then(|s| s.get("exp.job"))
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2,
        "replay and tune each time an exp.job span"
    );
    // ... and the server layer itself.
    assert_eq!(counter(snap, "serve.verb.replay"), 1);
    assert_eq!(counter(snap, "serve.verb.tune"), 1);
    assert_eq!(counter(snap, "serve.verb.metrics"), 1);
    assert!(counter(snap, "serve.store.publishes") >= 2);
    assert_eq!(
        snap.get("histograms")
            .and_then(|h| h.get("serve.request.replay"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(1),
        "per-verb latency histograms count one record per finished request"
    );
    // Host-dependent numbers stay quarantined under `timing`.
    assert!(snap.get("timing").is_some());
    assert!(snap
        .get("timing")
        .and_then(|t| t.get("histograms"))
        .and_then(|h| h.get("serve.request.replay"))
        .and_then(|h| h.get("sum"))
        .is_some());
    server.shutdown();
}

/// `status` keeps its original schema and gains `uptime_ms` plus per-verb counts.
#[test]
fn status_reports_uptime_and_verb_counts() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let first = client
        .request(&Json::obj([
            ("cmd", "status".to_json()),
            ("tenant", "ops".to_json()),
        ]))
        .expect("status reply");
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    let second = client
        .request(&Json::obj([
            ("cmd", "status".to_json()),
            ("tenant", "ops".to_json()),
        ]))
        .expect("status reply");
    let result = second.get("result").expect("status result");

    // Original contract intact (CI's jq checks key off these fields).
    assert_eq!(
        result
            .get("server")
            .and_then(|s| s.get("protocol"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert!(result.get("cache").is_some() && result.get("jobs").is_some());
    // New: wall-clock uptime and registry-derived per-verb request counts.
    assert!(result
        .get("server")
        .and_then(|s| s.get("uptime_ms"))
        .and_then(Json::as_u64)
        .is_some());
    assert_eq!(
        result
            .get("verbs")
            .and_then(|v| v.get("status"))
            .and_then(Json::as_u64),
        Some(2),
        "the in-flight status request counts itself"
    );
    // Tenant counters now live in the registry but render identically.
    let ops = result
        .get("tenants")
        .and_then(|t| t.get("ops"))
        .expect("ops tenant row");
    assert_eq!(ops.get("requests").and_then(Json::as_u64), Some(2));
    assert_eq!(ops.get("errors").and_then(Json::as_u64), Some(0));
    server.shutdown();
}

/// `subscribe` with a `tune` object streams one generation event per search round,
/// then replies with the full outcome.
#[test]
fn subscribe_tune_streams_generation_events() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (events, done) = client
        .request_streaming(&Json::obj([
            ("cmd", "subscribe".to_json()),
            ("id", "tune-1".to_json()),
            ("workload", "fir".to_json()),
            (
                "tune",
                Json::obj([
                    ("strategy", "hill-climb".to_json()),
                    ("budget", 8u64.to_json()),
                ]),
            ),
        ]))
        .expect("subscribe tune");
    assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));
    let result = done.get("result").expect("tune result");
    assert_eq!(result.get("workload").and_then(Json::as_str), Some("fir"));

    let generations: Vec<_> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("generation"))
        .collect();
    assert!(!generations.is_empty(), "tuning must stream its progress");
    assert_eq!(
        result.get("generations").and_then(Json::as_u64),
        Some(generations.len() as u64)
    );
    let mut last_replays = 0;
    for (i, event) in generations.iter().enumerate() {
        assert_eq!(event.get("id").and_then(Json::as_str), Some("tune-1"));
        let data = event.get("data").expect("generation data");
        assert_eq!(
            data.get("generation").and_then(Json::as_u64),
            Some(i as u64)
        );
        assert!(data
            .get("best")
            .and_then(|b| b.get("misses"))
            .and_then(Json::as_u64)
            .is_some());
        let replays = data
            .get("replays")
            .and_then(Json::as_u64)
            .expect("cumulative replays");
        assert!(replays >= last_replays, "replay counts are cumulative");
        last_replays = replays;
    }
    // The final frame carries the same outcome schema as the plain `tune` verb.
    assert!(result.get("result").and_then(|r| r.get("best")).is_some());
    server.shutdown();
}

/// Runs a fixed request sequence against a fresh server and returns the final
/// deterministic snapshot of its private registry (taken after shutdown has joined
/// every worker, so queue/busy gauges have settled).
fn serve_session_snapshot() -> String {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let service = std::sync::Arc::clone(server.service());
    let mut client = Client::connect(server.addr()).expect("connect");
    let requests = [
        Json::obj([("cmd", "status".to_json()), ("tenant", "ci".to_json())]),
        Json::obj([
            ("cmd", "replay".to_json()),
            ("workload", "fir".to_json()),
            ("tenant", "ci".to_json()),
        ]),
        // Identical resubmission: served from the content-addressed store, so the
        // second run must count a cache hit, not a second replay.
        Json::obj([
            ("cmd", "replay".to_json()),
            ("workload", "fir".to_json()),
            ("tenant", "ci".to_json()),
        ]),
        Json::obj([
            ("cmd", "tune".to_json()),
            ("workload", "fir".to_json()),
            ("budget", 4u64.to_json()),
        ]),
        Json::obj([("cmd", "metrics".to_json())]),
        Json::obj([("cmd", "frobnicate".to_json())]),
    ];
    for request in &requests {
        let _ = client.request(request).expect("reply");
    }
    drop(client);
    server.shutdown();
    service.telemetry().snapshot_deterministic().pretty()
}

/// Two identical serve sessions must report byte-identical deterministic snapshots:
/// metrics are diffable in CI because only behaviour — never host noise — moves them.
#[test]
fn identical_serve_sessions_snapshot_identically() {
    let first = serve_session_snapshot();
    let second = serve_session_snapshot();
    assert_eq!(
        first, second,
        "the deterministic snapshot must not vary across identical serve sessions"
    );
    // Sanity: the compared snapshot is substantial — every layer present, timing gone.
    for name in [
        "engine.replays",
        "opt.evaluations",
        "exp.job",
        "serve.verb.replay",
        "serve.tenant.ci.requests",
        "serve.request.tune",
    ] {
        assert!(first.contains(name), "snapshot must cover {name}:\n{first}");
    }
    assert!(
        !first.contains("timing"),
        "host-dependent timing must be quarantined out of the deterministic form"
    );
}

/// With `log_ndjson` on, every handled request — including malformed frames — writes
/// exactly one structured record with the tenant, verb, outcome and latency bucket.
#[test]
fn ndjson_log_records_every_request() {
    let mut server = spawn_test_server(|config| {
        config.log_ndjson = true;
    })
    .expect("bind test server");
    let buf = Arc::new(Mutex::new(Vec::new()));
    server
        .service()
        .set_log_writer(Some(Box::new(SharedLog(buf.clone()))));

    let mut client = Client::connect(server.addr()).expect("connect");
    let ok = client
        .request(&Json::obj([
            ("cmd", "status".to_json()),
            ("tenant", "ci".to_json()),
        ]))
        .expect("status reply");
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    let refused = client
        .request(&Json::obj([("cmd", "frobnicate".to_json())]))
        .expect("unknown-cmd reply");
    assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
    client.send_raw(b"{not json\n").expect("send garbage");
    let bad = client
        .recv()
        .expect("read error frame")
        .expect("error frame");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    drop(client);
    server.shutdown(); // joins everything: all log records are flushed

    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("utf-8 log");
    let records: Vec<Json> = text
        .lines()
        .map(|line| Json::parse(line).expect("each log line is one JSON record"))
        .collect();
    assert_eq!(records.len(), 3, "one record per handled request:\n{text}");
    for record in &records {
        assert!(record.get("duration_us").and_then(Json::as_u64).is_some());
        assert!(record
            .get("duration_log2_us")
            .and_then(Json::as_u64)
            .is_some());
    }
    assert_eq!(records[0].get("tenant").and_then(Json::as_str), Some("ci"));
    assert_eq!(records[0].get("cmd").and_then(Json::as_str), Some("status"));
    assert_eq!(records[0].get("outcome").and_then(Json::as_str), Some("ok"));
    // Unknown commands are sanitized to 'unknown' — client strings never mint cells.
    assert_eq!(
        records[1].get("cmd").and_then(Json::as_str),
        Some("unknown")
    );
    assert_eq!(
        records[1].get("outcome").and_then(Json::as_str),
        Some("bad_request")
    );
    assert_eq!(
        records[2].get("tenant").and_then(Json::as_str),
        Some("anonymous")
    );
    assert_eq!(
        records[2].get("cmd").and_then(Json::as_str),
        Some("invalid")
    );
    assert_eq!(
        records[2].get("outcome").and_then(Json::as_str),
        Some("bad_frame")
    );
}
