//! The concurrency stress suite: 32 client threads submitting a mix of identical and
//! distinct specs. Asserts the three dedup guarantees: each canonical key computes
//! exactly once (store counters), every response for a key is byte-identical on the
//! wire, and the bytes match a single-threaded `Session::run_spec` oracle.

use ccache_exp::ExperimentSpec;
use ccache_json::{Json, ToJson};
use ccache_serve::{spawn_test_server, Client};
use column_caching::Session;
use std::collections::BTreeMap;
use std::thread;

const CLIENTS: usize = 32;

/// The four spec variants the 32 clients share (8 clients per variant).
fn policies() -> Vec<Json> {
    vec![
        "shared".to_json(),
        "heuristic".to_json(),
        "round-robin".to_json(),
        Json::obj([("partition", 2u64.to_json())]),
    ]
}

/// The spec document the server synthesizes for `replay {workload, policy}` — the
/// oracle must run the exact same spec.
fn spec_doc(policy: &Json) -> Json {
    Json::obj([
        ("name", "serve-grid".to_json()),
        (
            "replay",
            Json::arr([Json::obj([
                ("workloads", Json::arr(["fir".to_json()])),
                ("policies", Json::arr([policy.clone()])),
            ])]),
        ),
    ])
}

#[test]
fn stress_32_clients_compute_each_key_exactly_once() {
    let mut server = spawn_test_server(|config| {
        config.workers = 4;
        config.queue_depth = 64;
    })
    .expect("bind test server");
    let addr = server.addr();
    let policies = policies();

    // 32 threads, thread i drives variant i % 4. Requests for one variant are fully
    // identical (same id, same tenant), so their reply lines must be byte-identical.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let variant = i % policies.len();
            let policy = policies[variant].clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let request = Json::obj([
                    ("cmd", "replay".to_json()),
                    ("id", (variant as u64).to_json()),
                    ("tenant", format!("tenant-{variant}").to_json()),
                    ("workload", "fir".to_json()),
                    ("policy", policy),
                ]);
                client.send(&request).expect("send");
                let line = client
                    .recv_line()
                    .expect("recv")
                    .expect("a reply before close");
                (variant, line)
            })
        })
        .collect();

    let mut by_variant: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for handle in handles {
        let (variant, line) = handle.join().expect("client thread panicked");
        by_variant.entry(variant).or_default().push(line);
    }

    // Dedup evidence from the store: 4 computations, 28 served from cache.
    let counters = server.service().cache_counters();
    assert_eq!(
        counters.misses,
        policies.len() as u64,
        "one compute per key"
    );
    assert_eq!(counters.hits, (CLIENTS - policies.len()) as u64);
    assert_eq!(counters.entries, policies.len() as u64);
    assert_eq!(server.service().jobs_executed(), policies.len() as u64);

    let oracle = Session::builder().quick(true).build().expect("session");
    for (variant, lines) in &by_variant {
        assert_eq!(lines.len(), CLIENTS / policies.len());
        // Byte-identity on the wire: every reply line for this key is the same bytes.
        for line in lines {
            assert_eq!(
                line, &lines[0],
                "replies for variant {variant} must be byte-identical"
            );
        }
        let frame = Json::parse(&lines[0]).expect("reply parses");
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            frame.get("id").and_then(Json::as_u64),
            Some(*variant as u64)
        );
        let result = frame.get("result").expect("result document");
        assert_eq!(
            result.get("artefact").and_then(Json::as_str),
            Some("ccache-exp"),
            "replies are the schema-versioned artefact"
        );
        // Single-threaded oracle: the exact same spec through a plain Session must
        // produce the exact bytes the server memoized and replied with.
        let spec = ExperimentSpec::from_json(&spec_doc(&policies[*variant])).expect("spec");
        let (_, oracle_bytes) = oracle.run_spec_bytes(&spec).expect("oracle run");
        assert_eq!(
            result.pretty(),
            oracle_bytes,
            "variant {variant} drifted from the Session::run_spec oracle"
        );
    }

    // Per-tenant counters add up: 8 requests per tenant, one compute per tenant's key
    // across all its threads.
    let mut client = Client::connect(addr).expect("connect");
    let status = client
        .request(&Json::obj([("cmd", "status".to_json())]))
        .expect("status");
    let tenants = status
        .get("result")
        .and_then(|r| r.get("tenants"))
        .expect("tenant table");
    let mut total_misses = 0;
    for variant in 0..policies.len() {
        let t = tenants
            .get(&format!("tenant-{variant}"))
            .expect("tenant entry");
        assert_eq!(t.get("requests").and_then(Json::as_u64), Some(8));
        assert_eq!(t.get("errors").and_then(Json::as_u64), Some(0));
        let hits = t.get("cache_hits").and_then(Json::as_u64).unwrap();
        let misses = t.get("cache_misses").and_then(Json::as_u64).unwrap();
        assert_eq!(hits + misses, 8);
        total_misses += misses;
    }
    assert_eq!(total_misses, policies.len() as u64);

    server.shutdown();
}

#[test]
fn sequential_resubmission_is_served_from_the_store() {
    let mut server = spawn_test_server(|_| {}).expect("bind test server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let request = Json::obj([
        ("cmd", "replay".to_json()),
        ("id", "twice".to_json()),
        ("workload", "fir".to_json()),
    ]);
    let first = client.request(&request).expect("first");
    let second = client.request(&request).expect("second");
    assert_eq!(first.compact(), second.compact());
    let counters = server.service().cache_counters();
    assert_eq!((counters.misses, counters.hits), (1, 1));
    server.shutdown();
}
