//! The instrumentation spine of the workspace: counters, gauges, fixed-log2-bucket
//! histograms and lightweight spans behind a shared [`Registry`].
//!
//! Every layer of the stack (replay engine, tuner, executor, server) records into a
//! registry — usually the process-wide [`Registry::global`], or a private one injected
//! for isolation (each `ccache-serve` service owns its own). A registry serializes to a
//! [`ccache_json::Json`] snapshot whose layout follows the repo's determinism contract:
//! everything *outside* the `timing` block is byte-identical across identical runs, and
//! every host-dependent number (span durations, histogram bucket occupancy — the
//! measured values are durations) is quarantined *inside* `timing`, exactly the way
//! `BENCH_replay.json` quarantines its `timing`/`ratios`/`environment` keys. Tests
//! therefore compare [`Registry::snapshot_deterministic`] and stay green on any host.
//!
//! Metric names are dotted `layer.noun.verb` paths (`engine.tlb.hits`,
//! `serve.store.claims`); the snapshot sorts them, so naming *is* the schema.
//!
//! Overhead policy: handles ([`Counter`], [`Gauge`], [`Histogram`], [`Span`]) are
//! resolved once by name and then touch a single atomic per event — no locks, no
//! allocation, no formatting on the hot path. The registry mutex is only taken at
//! handle-resolution and snapshot time.
//!
//! ```
//! use ccache_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let batches = registry.counter("engine.batches");
//! batches.add(3);
//! let span = registry.span("exp.job");
//! {
//!     let _active = span.start(); // records count + duration on drop
//! }
//! let snap = registry.snapshot_deterministic();
//! assert_eq!(snap.get("counters").unwrap().get("engine.batches").unwrap().as_u64(), Some(3));
//! assert_eq!(snap.get("spans").unwrap().get("exp.job").unwrap().get("count").unwrap().as_u64(), Some(1));
//! assert!(snap.get("timing").is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ccache_json::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` (1..=64) holds values
/// `v` with `floor(log2(v)) == k - 1`, i.e. `2^(k-1) <= v < 2^k`.
pub const BUCKETS: usize = 65;

/// The log2 bucket index of a value: 0 for 0, `floor(log2(v)) + 1` otherwise.
///
/// ```
/// use ccache_telemetry::bucket_of;
/// assert_eq!(bucket_of(0), 0);
/// assert_eq!(bucket_of(1), 1);
/// assert_eq!(bucket_of(2), 2);
/// assert_eq!(bucket_of(3), 2);
/// assert_eq!(bucket_of(1024), 11);
/// assert_eq!(bucket_of(u64::MAX), 64);
/// ```
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// A monotonically increasing event count. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (queue depth, workers busy, best-so-far fitness).
/// Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` to the gauge.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge (saturating at 0 under races).
    pub fn sub(&self, n: u64) {
        // fetch_update with saturating_sub: a decrement can never wrap below zero even
        // if an increment/decrement pair races.
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// `BUCKETS` zeroed atomics (arrays of atomics have no `Default` past length 32).
fn zero_buckets() -> [AtomicU64; BUCKETS] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// Shared storage of one histogram: value count, value sum, fixed log2 buckets.
#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: zero_buckets(),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// `[{"log2": k, "count": n}]` for the non-empty buckets.
    fn buckets_json(&self) -> Json {
        Json::arr(self.buckets.iter().enumerate().filter_map(|(k, b)| {
            let n = b.load(Ordering::Relaxed);
            (n > 0).then(|| Json::obj([("log2", (k as u64).to_json()), ("count", n.to_json())]))
        }))
    }
}

/// A distribution with fixed log2 buckets ([`bucket_of`]).
///
/// The snapshot treats the *count* of recorded values as deterministic and quarantines
/// the sum and bucket occupancy under `timing`: the workspace's histograms measure
/// durations, whose magnitudes are host-dependent even when the number of measured
/// events is not. Cloning shares the underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, value: u64) {
        self.core.record(value);
    }

    /// How many values have been recorded.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// The sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// The occupancy of bucket `k` (see [`bucket_of`]).
    pub fn bucket(&self, k: usize) -> u64 {
        self.core.buckets[k].load(Ordering::Relaxed)
    }
}

/// Shared storage of one span: completion count plus a duration histogram.
#[derive(Debug)]
struct SpanCore {
    count: AtomicU64,
    total_nanos: AtomicU64,
    micros: [AtomicU64; BUCKETS],
}

impl Default for SpanCore {
    fn default() -> Self {
        SpanCore {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            micros: zero_buckets(),
        }
    }
}

/// A start/end event fired by spans when a sink is installed
/// ([`Registry::set_event_sink`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A span began.
    SpanStart {
        /// The span's registered name.
        name: String,
    },
    /// A span finished after `nanos` nanoseconds.
    SpanEnd {
        /// The span's registered name.
        name: String,
        /// Elapsed wall-clock nanoseconds.
        nanos: u64,
    },
}

type EventSink = Box<dyn Fn(&TelemetryEvent) + Send + Sync>;

/// A named region of work. [`Span::start`] returns an [`ActiveSpan`] guard; when the
/// guard drops, the span's completion count and duration histogram are updated and a
/// [`TelemetryEvent::SpanEnd`] fires if the registry has an event sink.
///
/// Snapshot semantics: the completion count is deterministic; total nanoseconds and the
/// log2-microsecond duration buckets live under `timing`.
#[derive(Clone)]
pub struct Span {
    name: Arc<str>,
    core: Arc<SpanCore>,
    sink: Arc<Mutex<Option<EventSink>>>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("name", &self.name).finish()
    }
}

impl Span {
    /// Begins the span, firing [`TelemetryEvent::SpanStart`] when a sink is installed.
    pub fn start(&self) -> ActiveSpan {
        self.emit(&TelemetryEvent::SpanStart {
            name: self.name.to_string(),
        });
        ActiveSpan {
            span: self.clone(),
            started: Instant::now(),
        }
    }

    /// How many times the span has completed.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    fn emit(&self, event: &TelemetryEvent) {
        // Fast path: no sink installed ⇒ one mutex lock, no formatting. Sinks are a
        // debugging facility, not a hot-path feature.
        if let Ok(guard) = self.sink.lock() {
            if let Some(sink) = guard.as_ref() {
                sink(event);
            }
        }
    }

    fn finish(&self, nanos: u64) {
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.core.micros[bucket_of(nanos / 1_000)].fetch_add(1, Ordering::Relaxed);
        self.emit(&TelemetryEvent::SpanEnd {
            name: self.name.to_string(),
            nanos,
        });
    }
}

/// The RAII guard of a running [`Span`]; dropping it ends the span.
#[derive(Debug)]
pub struct ActiveSpan {
    span: Span,
    started: Instant,
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.span.finish(nanos);
    }
}

/// The interior of a registry, shared by all its clones and handles.
#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, Arc<SpanCore>>>,
    sink: Arc<Mutex<Option<EventSink>>>,
}

/// A named metric space: resolves names to shared [`Counter`]/[`Gauge`]/[`Histogram`]/
/// [`Span`] handles and snapshots them all as one JSON document.
///
/// Cloning is cheap and shares the metric space — a registry is an `Arc` at heart.
/// [`Registry::global`] is the process-wide default every layer falls back to;
/// subsystems that need isolation (a server instance, a determinism test) construct
/// their own with [`Registry::new`] and inject it.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.inner.counters.lock().map(|m| m.len()).unwrap_or(0);
        let gauges = self.inner.gauges.lock().map(|m| m.len()).unwrap_or(0);
        let histograms = self.inner.histograms.lock().map(|m| m.len()).unwrap_or(0);
        let spans = self.inner.spans.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry")
            .field("counters", &counters)
            .field("gauges", &gauges)
            .field("histograms", &histograms)
            .field("spans", &spans)
            .finish()
    }
}

impl Registry {
    /// Creates an empty, private registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry: what instrumented layers use when none is injected.
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// Resolves (registering on first use) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("telemetry lock");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Resolves (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("telemetry lock");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Resolves (registering on first use) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("telemetry lock");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Resolves (registering on first use) the span called `name`.
    pub fn span(&self, name: &str) -> Span {
        let mut map = self.inner.spans.lock().expect("telemetry lock");
        let core = map.entry(name.to_owned()).or_default();
        Span {
            name: Arc::from(name),
            core: Arc::clone(core),
            sink: Arc::clone(&self.inner.sink),
        }
    }

    /// The current value of the counter called `name`; 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.inner.counters.lock().expect("telemetry lock");
        map.get(name).map(Counter::get).unwrap_or(0)
    }

    /// The current value of the gauge called `name`; 0 if it was never registered.
    pub fn gauge_value(&self, name: &str) -> u64 {
        let map = self.inner.gauges.lock().expect("telemetry lock");
        map.get(name).map(Gauge::get).unwrap_or(0)
    }

    /// Every registered counter whose name starts with `prefix`, sorted by name —
    /// the aggregation primitive behind e.g. per-tenant tables in `status` replies.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let map = self.inner.counters.lock().expect("telemetry lock");
        map.range(prefix.to_owned()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect()
    }

    /// Installs (or with `None` removes) the sink that receives span start/end events.
    pub fn set_event_sink(&self, sink: Option<EventSink>) {
        *self.inner.sink.lock().expect("telemetry lock") = sink;
    }

    /// The full snapshot, host-dependent numbers quarantined under `timing`.
    ///
    /// Layout (keys in insertion order, metric names sorted):
    ///
    /// ```json
    /// {
    ///   "telemetry": "ccache-telemetry", "version": 1,
    ///   "counters": {"engine.batches": 3},
    ///   "gauges": {"serve.queue.depth": 0},
    ///   "histograms": {"serve.request.status": {"count": 2}},
    ///   "spans": {"exp.job": {"count": 5}},
    ///   "timing": {
    ///     "histograms": {"serve.request.status": {"sum": 184, "buckets": [...]}},
    ///     "spans": {"exp.job": {"total_nanos": 91504, "buckets_log2_us": [...]}}
    ///   }
    /// }
    /// ```
    pub fn snapshot(&self) -> Json {
        self.render(true)
    }

    /// The snapshot with the `timing` block removed: byte-identical across identical
    /// runs, the form determinism tests compare.
    pub fn snapshot_deterministic(&self) -> Json {
        self.render(false)
    }

    fn render(&self, timing: bool) -> Json {
        let counters = self.inner.counters.lock().expect("telemetry lock");
        let gauges = self.inner.gauges.lock().expect("telemetry lock");
        let histograms = self.inner.histograms.lock().expect("telemetry lock");
        let spans = self.inner.spans.lock().expect("telemetry lock");

        let counters_json = Json::obj(
            counters
                .iter()
                .map(|(name, c)| (name.as_str(), c.get().to_json())),
        );
        let gauges_json = Json::obj(
            gauges
                .iter()
                .map(|(name, g)| (name.as_str(), g.get().to_json())),
        );
        let histograms_json = Json::obj(
            histograms
                .iter()
                .map(|(name, h)| (name.as_str(), Json::obj([("count", h.count().to_json())]))),
        );
        let spans_json = Json::obj(spans.iter().map(|(name, s)| {
            (
                name.as_str(),
                Json::obj([("count", s.count.load(Ordering::Relaxed).to_json())]),
            )
        }));

        let mut doc = vec![
            ("telemetry", "ccache-telemetry".to_json()),
            ("version", 1u64.to_json()),
            ("counters", counters_json),
            ("gauges", gauges_json),
            ("histograms", histograms_json),
            ("spans", spans_json),
        ];
        if timing {
            let histograms_timing = Json::obj(histograms.iter().map(|(name, h)| {
                (
                    name.as_str(),
                    Json::obj([
                        ("sum", h.sum().to_json()),
                        ("buckets", h.core.buckets_json()),
                    ]),
                )
            }));
            let spans_timing = Json::obj(spans.iter().map(|(name, s)| {
                let micros = Json::arr(s.micros.iter().enumerate().filter_map(|(k, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        Json::obj([("log2", (k as u64).to_json()), ("count", n.to_json())])
                    })
                }));
                (
                    name.as_str(),
                    Json::obj([
                        (
                            "total_nanos",
                            s.total_nanos.load(Ordering::Relaxed).to_json(),
                        ),
                        ("buckets_log2_us", micros),
                    ]),
                )
            }));
            doc.push((
                "timing",
                Json::obj([("histograms", histograms_timing), ("spans", spans_timing)]),
            ));
        }
        Json::obj(doc)
    }
}

/// The convenient imports: `use ccache_telemetry::prelude::*;`.
pub mod prelude {
    pub use crate::{Counter, Gauge, Histogram, Registry, Span};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        for k in 0..64u32 {
            let low = 1u64 << k;
            assert_eq!(bucket_of(low), k as usize + 1, "2^{k}");
            if k > 0 {
                assert_eq!(bucket_of(low - 1), k as usize, "2^{k} - 1");
            }
        }
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_and_gauges_share_cells_across_resolutions() {
        let registry = Registry::new();
        registry.counter("a.b").add(2);
        registry.counter("a.b").incr();
        assert_eq!(registry.counter_value("a.b"), 3);
        let gauge = registry.gauge("g");
        gauge.set(10);
        registry.gauge("g").sub(4);
        assert_eq!(gauge.get(), 6);
        gauge.sub(100); // saturates, never wraps
        assert_eq!(registry.gauge_value("g"), 0);
    }

    #[test]
    fn histogram_records_into_log2_buckets() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [0, 1, 2, 3, 900, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1930);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(10), 1); // 900
        assert_eq!(h.bucket(11), 1); // 1024
    }

    #[test]
    fn spans_count_deterministically_and_fire_events() {
        let registry = Registry::new();
        let events = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&events);
        registry.set_event_sink(Some(Box::new(move |event| {
            seen.lock().unwrap().push(event.clone());
        })));
        let span = registry.span("work");
        drop(span.start());
        drop(span.start());
        assert_eq!(span.count(), 2);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            TelemetryEvent::SpanStart {
                name: "work".to_owned()
            }
        );
        assert!(matches!(events[1], TelemetryEvent::SpanEnd { ref name, .. } if name == "work"));
    }

    #[test]
    fn snapshot_is_deterministic_modulo_timing() {
        let run = || {
            let registry = Registry::new();
            registry.counter("engine.batches").add(7);
            registry.gauge("serve.queue.depth").set(0);
            let h = registry.histogram("serve.request.status");
            h.record(12); // "duration" — varies run to run in real use
            let span = registry.span("exp.job");
            drop(span.start());
            registry
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.snapshot_deterministic().pretty(),
            b.snapshot_deterministic().pretty()
        );
        // The full snapshot carries the quarantined block...
        let full = a.snapshot();
        assert!(full.get("timing").is_some());
        // ...and deleting it recovers exactly the deterministic form.
        let timing = full.get("timing").unwrap();
        assert!(timing.get("spans").unwrap().get("exp.job").is_some());
    }

    #[test]
    fn prefix_scan_returns_sorted_matches_only() {
        let registry = Registry::new();
        registry.counter("serve.tenant.alice.requests").add(3);
        registry.counter("serve.tenant.bob.requests").add(1);
        registry.counter("serve.verb.status").add(9);
        let scan = registry.counters_with_prefix("serve.tenant.");
        assert_eq!(
            scan,
            vec![
                ("serve.tenant.alice.requests".to_owned(), 3),
                ("serve.tenant.bob.requests".to_owned(), 1),
            ]
        );
    }

    #[test]
    fn registry_clones_share_the_metric_space() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("x").incr();
        assert_eq!(registry.counter_value("x"), 1);
        // global() always hands out the same space
        let token = format!("test.global.{}", std::process::id());
        Registry::global().counter(&token).incr();
        assert_eq!(Registry::global().counter_value(&token), 1);
    }

    #[test]
    fn handles_are_lock_free_after_resolution() {
        // Not a perf test — a liveness check that recording while the registry mutex is
        // held by another thread cannot deadlock (handles never take the map locks).
        let registry = Registry::new();
        let counter = registry.counter("contended");
        let map_guard = registry.inner.counters.lock().unwrap();
        counter.add(5);
        drop(map_guard);
        assert_eq!(counter.get(), 5);
    }

    #[test]
    fn event_sink_removal_stops_delivery() {
        let registry = Registry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let sink_hits = Arc::clone(&hits);
        registry.set_event_sink(Some(Box::new(move |_| {
            sink_hits.fetch_add(1, Ordering::Relaxed);
        })));
        let span = registry.span("s");
        drop(span.start());
        registry.set_event_sink(None);
        drop(span.start());
        assert_eq!(hits.load(Ordering::Relaxed), 2); // start+end of the first only
    }
}
