//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors the small slice
//! of the rand 0.9 API its workloads use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] and [`Rng::random_bool`]. The generator is SplitMix64 — fast,
//! tiny and deterministic for a given seed, which is all the instrumented workloads need
//! (they use randomness only to synthesise reproducible inputs).

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (every supported integer fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is guaranteed to be in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        })*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples an integer uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or unbounded.
    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(x) => x.to_i128(),
            Bound::Excluded(x) => x.to_i128() + 1,
            Bound::Unbounded => panic!("random_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(x) => x.to_i128(),
            Bound::Excluded(x) => x.to_i128() - 1,
            Bound::Unbounded => panic!("random_range requires an upper bound"),
        };
        assert!(lo <= hi, "random_range called with an empty range");
        let span = (hi - lo) as u128 + 1;
        let v = (self.next_u64() as u128) % span;
        T::from_i128(lo + v as i128)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of the word give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Not the cryptographic ChaCha generator of the real `rand` crate — the workloads
    /// only need a reproducible stream, not security.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let b: u8 = rng.random_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let u: usize = rng.random_range(0..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "got {heads}");
    }
}
