//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! wall-clock benchmarking harness exposing the criterion API surface its benches use:
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`], benchmark groups with
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark is measured as `sample_size` samples; every sample times a batch of
//! iterations sized so one sample takes roughly `measurement_time / sample_size`. The
//! harness reports min/median/mean per-iteration time and derived throughput. There are no
//! HTML reports, statistical regressions or plots — numbers go to stdout.
//!
//! Filtering works like criterion's CLI: any non-flag argument is a substring filter on
//! the benchmark id. `--quick` shrinks sampling for smoke runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may also use `std::hint`).
pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility, ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declares the quantity one iteration processes, so the harness can report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sampled {
    min: Duration,
    median: Duration,
    mean: Duration,
}

/// The measurement engine handed to `bench_function` closures.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<Sampled>,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the cost of one iteration.
        let warmup_end = Instant::now() + self.config.warm_up_time;
        let mut one = Duration::from_nanos(1);
        let mut warm_iters = 0u64;
        while Instant::now() < warmup_end {
            let t = Instant::now();
            black_box(routine());
            one = t.elapsed().max(Duration::from_nanos(1));
            warm_iters += 1;
        }
        let _ = warm_iters;

        let per_sample = (self.config.measurement_time / self.config.sample_size as u32)
            .max(Duration::from_micros(50));
        let iters_per_sample = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.result = Some(Sampled {
            min: samples[0],
            median: samples[samples.len() / 2],
            mean,
        });
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut input = Some(setup());
        // Warm up once.
        {
            let i = input.take().expect("input present");
            black_box(routine(i));
            input = Some(setup());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let i = input.take().expect("input present");
            let t = Instant::now();
            black_box(routine(i));
            samples.push(t.elapsed());
            input = Some(setup());
        }
        samples.sort();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.result = Some(Sampled {
            min: samples[0],
            median: samples[samples.len() / 2],
            mean,
        });
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

/// The benchmark harness: owns configuration and the CLI filter.
pub struct Criterion {
    config: Config,
    filter: Option<String>,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--quick" => quick = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_owned()),
            }
        }
        let mut config = Config::default();
        if quick {
            config.sample_size = 5;
            config.warm_up_time = Duration::from_millis(50);
            config.measurement_time = Duration::from_millis(200);
        }
        Criterion {
            config,
            filter,
            throughput: None,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_owned(), self.throughput, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            config: None,
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) => {
                let rate = throughput
                    .map(|t| describe_rate(t, s.median))
                    .unwrap_or_default();
                println!(
                    "{id:<50} min {:>12} median {:>12} mean {:>12}{rate}",
                    fmt_duration(s.min),
                    fmt_duration(s.median),
                    fmt_duration(s.mean),
                );
            }
            None => println!("{id:<50} (no measurement recorded)"),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn describe_rate(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match t {
        Throughput::Elements(n) => format!("  ({:.1} Melem/s)", n as f64 / secs / 1e6),
        Throughput::Bytes(n) => format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0)),
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    config: Option<Config>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut cfg = self
            .config
            .take()
            .unwrap_or_else(|| self.parent.config.clone());
        cfg.sample_size = n.max(2);
        self.config = Some(cfg);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let snapshot = Criterion {
            config: self
                .config
                .clone()
                .unwrap_or_else(|| self.parent.config.clone()),
            filter: self.parent.filter.clone(),
            throughput: None,
        };
        snapshot.run_one(id, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions with an optional shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3)
            .throughput(Throughput::Elements(4))
            .bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64, 2, 3, 4],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::LargeInput,
                )
            });
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        trivial(&mut c);
    }
}
