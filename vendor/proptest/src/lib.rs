//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors the slice of the
//! proptest API its property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`](prop::collection::vec), [`any`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases are **not
//! shrunk** — the failing input is printed as-is by the underlying `assert!`. Generation is
//! deterministic per test (seeded from the test name), so failures reproduce.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 generator used to produce test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive), via `i128` widening.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// FNV-1a hash of a test name, used as its deterministic base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Integers samplable by range strategies.
pub trait SampleInt: Copy {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (value guaranteed in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {
        $(
            impl SampleInt for $t {
                fn to_i128(self) -> i128 {
                    self as i128
                }
                fn from_i128(v: i128) -> Self {
                    v as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    <$t>::from_i128(rng.int_in(self.start.to_i128(), self.end.to_i128() - 1))
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    <$t>::from_i128(rng.int_in(self.start().to_i128(), self.end().to_i128()))
                }
            }
        )*
    };
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Sizes accepted by [`collection::vec`](prop::collection::vec): a fixed length or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection and combinator strategies, under the paths real proptest uses.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<T>` with element strategy `element` and a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `fn name()` that checks the body against `cases` random inputs.
///
/// Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_of(stringify!($name));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10).prop_flat_map(|a| (Just(a), a..a + 10))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i32..=5, z in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn vecs_respect_sizes(
            v in prop::collection::vec((0usize..4, any::<bool>()), 1..20),
            w in prop::collection::vec(0u64..100, 8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(w.len(), 8);
            prop_assert!(v.iter().all(|&(a, _)| a < 4));
        }

        #[test]
        fn flat_map_chains(p in pair()) {
            let (a, b) = p;
            prop_assert!(b >= a && b < a + 10);
        }
    }
}
