//! Cross-crate property: replaying a trace through the compact binary format — encode,
//! then stream-decode through `ReplayEngine::replay_reader` in bounded batches — yields
//! **bit-identical** run results to replaying the in-memory trace, for every backend
//! kind and arbitrary reference streams.

use column_caching::core::engine::ReplayEngine;
use column_caching::core::runner::{CacheMapping, RegionMapping};
use column_caching::sim::backend::BackendKind;
use column_caching::sim::{ColumnMask, SystemConfig};
use column_caching::trace::binfmt::{write_trace, TraceReader};
use column_caching::trace::{MemAccess, Trace};
use proptest::prelude::*;

fn config() -> SystemConfig {
    SystemConfig {
        page_size: 256,
        ..SystemConfig::default()
    }
}

fn mapping() -> CacheMapping {
    let mut m = CacheMapping::new();
    m.map(
        0x0,
        512,
        RegionMapping::Exclusive {
            mask: ColumnMask::single(0),
            preload: true,
        },
    );
    m.map(
        0x10_0000,
        0x1_0000,
        RegionMapping::Columns {
            mask: ColumnMask::single(3),
        },
    );
    m.map(0x8000, 256, RegionMapping::Uncached);
    m
}

fn build_trace(ops: &[(u16, u8, bool)]) -> Trace {
    // Project the raw tuples onto the mapped regions so the replay exercises
    // exclusive/preloaded, column-restricted, uncached and default pages alike.
    ops.iter()
        .map(|&(off, region, w)| {
            let base = match region % 4 {
                0 => 0x0,
                1 => 0x10_0000,
                2 => 0x8000,
                _ => 0x4_0000,
            };
            let addr = base + u64::from(off) * 4;
            let size = 4;
            if w {
                MemAccess::write(addr, size)
            } else {
                MemAccess::read(addr, size)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming binary-format replay is bit-identical to in-memory replay, at every
    /// batch size, for every backend.
    #[test]
    fn binary_stream_replay_is_bit_identical_to_in_memory_replay(
        ops in prop::collection::vec((any::<u16>(), any::<u8>(), any::<bool>()), 1..600),
        batch in 1usize..512,
    ) {
        let trace = build_trace(&ops);
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();

        for kind in BackendKind::ALL {
            let mut engine = ReplayEngine::new(kind, config()).unwrap();
            engine.apply(&mapping()).unwrap();
            engine.set_batch_size(batch);
            engine.snapshot();

            let in_memory = engine.replay("run", &trace);

            engine.reset();
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            let streamed = engine.replay_reader("run", &mut reader).unwrap();

            // RunResult derives PartialEq over every statistic — cycles, hit/miss
            // counts, writebacks, the cycle report — so equality here is bit-identity
            // of the whole result.
            prop_assert_eq!(in_memory, streamed, "backend {}", kind);
        }
    }
}
