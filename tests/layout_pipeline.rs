//! Cross-crate integration tests of the full layout pipeline on non-MPEG workloads: trace
//! recording → conflict graph → column assignment → cache mapping → measurable improvement
//! over an unmanaged cache.

use column_caching::core::runner::{run_trace, CacheMapping, RegionMapping};
use column_caching::layout::{
    assign_columns, conflict_graph_from_trace, plan_phases, LayoutOptions, ProgramIr, Stmt,
    WeightOptions,
};
use column_caching::prelude::*;
use column_caching::sim::SystemConfig;
use column_caching::workloads::kernels::{run_fir, run_histogram, FirConfig, HistogramConfig};
use column_caching::workloads::mpeg::{run_phases, MpegConfig};

fn sys_config() -> SystemConfig {
    SystemConfig {
        page_size: 128,
        ..SystemConfig::default()
    }
}

#[test]
fn layout_driven_mapping_never_loses_to_shared_cache_on_kernels() {
    for run in [
        run_fir(&FirConfig::default()),
        run_histogram(&HistogramConfig::default()),
    ] {
        let (graph, units) =
            conflict_graph_from_trace(&run.trace, &run.symbols, &WeightOptions::default());
        let assignment = assign_columns(&graph, &LayoutOptions::new(4, 512)).unwrap();
        let mapping = CacheMapping::from_assignment(&assignment, &units, &run.symbols, &[]);
        let managed = run_trace("managed", sys_config(), &mapping, &run.trace).unwrap();
        let shared = run_trace("shared", sys_config(), &CacheMapping::new(), &run.trace).unwrap();
        assert!(
            managed.total_cycles() <= shared.total_cycles() * 102 / 100,
            "{}: managed {} vs shared {}",
            run.name,
            managed.total_cycles(),
            shared.total_cycles()
        );
        assert_eq!(managed.references, shared.references);
    }
}

#[test]
fn conflicting_streams_are_separated_and_conflict_misses_disappear() {
    // Two arrays that collide pathologically in a direct-mapped-style situation: both are
    // scanned together repeatedly. With a single column each they cannot evict each other.
    let mut rec = TraceRecorder::new();
    let a = rec.allocate("a", 512, 512);
    let b = rec.allocate("b", 512, 512);
    for _pass in 0..8 {
        for i in 0..64u64 {
            rec.read(a, i * 8, 8);
            rec.read(b, i * 8, 8);
        }
    }
    let (trace, symbols) = rec.finish();
    let (graph, units) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());
    assert!(graph.weight(0, 1) > 0, "the two arrays must conflict");
    let assignment = assign_columns(&graph, &LayoutOptions::new(4, 512)).unwrap();
    assert_ne!(assignment.columns_of(a), assignment.columns_of(b));
    let mapping = CacheMapping::from_assignment(&assignment, &units, &symbols, &[]);
    let managed = run_trace("managed", sys_config(), &mapping, &trace).unwrap();
    // each array is 512 bytes = 16 lines; after the cold pass everything must hit
    assert_eq!(managed.misses, 32);
}

#[test]
fn static_analysis_agrees_with_profile_on_a_simple_loop_nest() {
    // Build the same program twice: once as an executed trace, once as IR.
    let mut rec = TraceRecorder::new();
    let x = rec.allocate("x", 256, 8);
    let y = rec.allocate("y", 256, 8);
    let z = rec.allocate("z", 256, 8);
    // phase 1: x and y together; phase 2: z alone
    for i in 0..32u64 {
        rec.read(x, (i % 32) * 8, 8);
        rec.write(y, (i % 32) * 8, 8);
    }
    for i in 0..32u64 {
        rec.read(z, (i % 32) * 8, 8);
    }
    let (trace, symbols) = rec.finish();
    let (profile_graph, _) = conflict_graph_from_trace(&trace, &symbols, &WeightOptions::default());

    let ir = ProgramIr::from_stmts(vec![
        Stmt::repeat(32, vec![Stmt::read(x, 1), Stmt::write(y, 1)]),
        Stmt::repeat(32, vec![Stmt::read(z, 1)]),
    ]);
    let (static_graph, vars) = ir.conflict_graph(&symbols);
    assert_eq!(vars.len(), 3);

    // Both methods agree on the structure: x conflicts with y, z conflicts with neither.
    let (px, py, pz) = (0, 1, 2);
    assert!(profile_graph.weight(px, py) > 0);
    assert_eq!(profile_graph.weight(px, pz), 0);
    assert_eq!(profile_graph.weight(py, pz), 0);
    let sx = vars.iter().position(|v| *v == x).unwrap();
    let sy = vars.iter().position(|v| *v == y).unwrap();
    let sz = vars.iter().position(|v| *v == z).unwrap();
    assert!(static_graph.weight(sx, sy) > 0);
    assert_eq!(static_graph.weight(sx, sz), 0);
    assert_eq!(static_graph.weight(sy, sz), 0);
}

#[test]
fn per_phase_plans_require_remapping_only_when_access_patterns_change() {
    let (phases, symbols) = run_phases(&MpegConfig::small());
    let plan = plan_phases(
        &phases,
        &symbols,
        &WeightOptions::default(),
        &LayoutOptions::new(4, 512),
    )
    .unwrap();
    assert_eq!(plan.phases.len(), 3);
    // phases use disjoint variables here, so every transition remaps something (new
    // variables appear) but each phase's own layout is conflict-free or nearly so
    assert_eq!(plan.remap_counts.len(), 2);
    assert!(plan.total_remaps() > 0);
    for phase in &plan.phases {
        assert!(phase.references > 0);
    }
}

#[test]
fn uncached_mapping_is_honoured_end_to_end() {
    let run = run_histogram(&HistogramConfig::small());
    let input = run.symbols.by_name("hist_input").unwrap();
    let mut mapping = CacheMapping::new();
    mapping.map(input.base, input.size, RegionMapping::Uncached);
    let result = run_trace("uncached-input", sys_config(), &mapping, &run.trace).unwrap();
    // every input access bypasses the cache; the table still caches normally
    assert!(result.uncached >= run.trace.count_for(input.id) as u64);
    assert!(result.hits > 0);
}
