//! Telemetry determinism: an observed tuning search must produce byte-identical
//! deterministic snapshots (`Registry::snapshot_deterministic`, i.e. the full
//! snapshot minus the quarantined `timing` block) across identical runs. This is the
//! contract that makes metrics diffable in CI: any snapshot change signals a
//! behaviour change, never host noise. (The serve-session half of the same contract
//! lives in `ccache-serve`'s telemetry suite, next to the server it exercises.)

use ccache_json::ToJson;
use column_caching::opt::{tune_observed, TuneRequest};
use column_caching::telemetry::Registry;

#[test]
fn observed_tuning_reports_identical_metrics_across_runs() {
    let run = || {
        let registry = Registry::new();
        let workload = column_caching::workloads::corpus("fir", true).expect("corpus");
        let request = TuneRequest {
            budget: 8,
            ..TuneRequest::default()
        };
        let outcome = tune_observed(
            &workload.trace,
            &workload.symbols,
            &request,
            &registry,
            None,
        )
        .expect("tune");
        (
            outcome.to_json().pretty(),
            registry.snapshot_deterministic().pretty(),
        )
    };
    let (outcome_a, snapshot_a) = run();
    let (outcome_b, snapshot_b) = run();
    assert_eq!(outcome_a, outcome_b, "tuning itself is deterministic");
    assert_eq!(
        snapshot_a, snapshot_b,
        "and so is everything its telemetry reports (modulo timing)"
    );
    assert!(snapshot_a.contains("opt.generations"));
    assert!(snapshot_a.contains("opt.evaluations"));
    assert!(snapshot_a.contains("opt.best.misses"));
    // the amortized fitness datapath reports its pool and warm-up activity too
    assert!(snapshot_a.contains("opt.engine_pool.hits"));
    assert!(snapshot_a.contains("opt.engine_pool.builds"));
    assert!(snapshot_a.contains("opt.warmup.reused"));
    assert!(snapshot_a.contains("opt.warmup.full"));
}
