//! End-to-end integration test of the Figure 4 pipeline: workload generation → scratchpad
//! selection → placement → data layout → simulation, asserting the qualitative shapes the
//! paper reports (at a reduced scale so the test stays fast).

use column_caching::core::dynamic::{run_dynamic, Figure4dResult};
use column_caching::core::partition::{partition_sweep, PartitionConfig};
use column_caching::workloads::mpeg::{
    run_combined, run_dequant, run_idct, run_phases, run_plus, MpegConfig,
};

fn mpeg() -> MpegConfig {
    MpegConfig::small()
}

fn config() -> PartitionConfig {
    PartitionConfig::default()
}

#[test]
fn figure4a_dequant_all_scratchpad_is_optimal() {
    let sweep = partition_sweep(&run_dequant(&mpeg()), &config()).unwrap();
    assert_eq!(sweep.points.len(), 5);
    let all_scratchpad = sweep.cycles_at(0).unwrap();
    let all_cache = sweep.cycles_at(4).unwrap();
    assert!(all_scratchpad < all_cache);
    assert_eq!(sweep.best().cache_columns, 0);
    // with the whole working set resident in the scratchpad there are no misses at all
    assert_eq!(sweep.points[0].result.misses, 0);
}

#[test]
fn figure4b_plus_all_scratchpad_is_optimal() {
    let sweep = partition_sweep(&run_plus(&mpeg()), &config()).unwrap();
    let all_scratchpad = sweep.cycles_at(0).unwrap();
    let all_cache = sweep.cycles_at(4).unwrap();
    assert!(all_scratchpad < all_cache);
    assert_eq!(sweep.best().cache_columns, 0);
}

#[test]
fn figure4c_idct_prefers_the_cache() {
    let sweep = partition_sweep(&run_idct(&mpeg()), &config()).unwrap();
    let all_scratchpad = sweep.cycles_at(0).unwrap();
    let all_cache = sweep.cycles_at(4).unwrap();
    assert!(
        all_cache < all_scratchpad,
        "idct's >2 KiB working set cannot live in the scratchpad ({all_cache} vs {all_scratchpad})"
    );
    assert!(sweep.best().cache_columns >= 1);
}

#[test]
fn figure4_optimal_partition_differs_across_routines() {
    // The paper's central observation: the optimum partition varies per procedure, so any
    // static partition is a compromise.
    let dequant = partition_sweep(&run_dequant(&mpeg()), &config()).unwrap();
    let idct = partition_sweep(&run_idct(&mpeg()), &config()).unwrap();
    assert_ne!(dequant.best().cache_columns, idct.best().cache_columns);
}

#[test]
fn figure4d_column_cache_beats_every_static_partition_it_must_beat() {
    let combined = run_combined(&mpeg());
    let static_sweep = partition_sweep(&combined, &config()).unwrap();
    let (phases, symbols) = run_phases(&mpeg());
    let dynamic = run_dynamic(&phases, &symbols, &config()).unwrap();
    let fig = Figure4dResult {
        static_cycles: static_sweep
            .points
            .iter()
            .map(|p| (p.cache_columns, p.cycles))
            .collect(),
        column_cache_cycles: dynamic.cycles,
        column_cache_control_cycles: dynamic.control_cycles,
    };
    let worst = fig.static_cycles.iter().map(|&(_, c)| c).max().unwrap();
    let (best_cols, best) = fig.best_static();
    assert!(fig.column_cache_cycles < worst);
    // the dynamic column cache is at least competitive with the best static partition
    assert!(
        fig.column_cache_cycles as f64 <= best as f64 * 1.15,
        "column cache {} vs best static {best} (cache={best_cols})",
        fig.column_cache_cycles
    );
    // and the remap overhead is a small fraction of the run
    assert!(fig.column_cache_control_cycles < fig.column_cache_cycles / 2);
}

#[test]
fn partition_sweep_accounts_every_reference_at_every_point() {
    let run = run_dequant(&mpeg());
    let sweep = partition_sweep(&run, &config()).unwrap();
    for p in &sweep.points {
        assert_eq!(p.result.references, run.trace.len() as u64);
        assert_eq!(p.cache_columns + p.scratchpad_columns, 4);
        assert!(p.cycles >= p.result.references); // at least one cycle per reference
    }
}

#[test]
fn scratchpad_points_store_only_what_fits() {
    let run = run_idct(&mpeg());
    let cfg = config();
    let sweep = partition_sweep(&run, &cfg).unwrap();
    for p in &sweep.points {
        let scratch_bytes: u64 = p
            .scratchpad_vars
            .iter()
            .filter_map(|name| run.symbols.by_name(name))
            .map(|r| r.size)
            .sum();
        assert!(scratch_bytes <= p.scratchpad_columns as u64 * cfg.column_bytes());
    }
}
