//! Property-based tests of the cross-crate invariants the reproduction relies on.
//!
//! These complement the per-crate unit tests: each property is stated over randomly
//! generated configurations, traces or graphs and exercises the public APIs end to end.

use column_caching::core::engine::ReplayEngine;
use column_caching::layout::coloring::{color_count, greedy_coloring, is_proper, minimum_coloring};
use column_caching::layout::{assign_columns, ConflictGraph, LayoutOptions, Vertex};
use column_caching::prelude::*;
use column_caching::sim::{build_backend, BackendKind, CacheConfig, SystemConfig, Tint};
use column_caching::trace::Interval;
use column_caching::workloads::gzipsim::{compress, decompress, generate_input, GzipConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------------------
// Column cache invariants
// ---------------------------------------------------------------------------------------

fn arbitrary_mask(columns: usize) -> impl Strategy<Value = ColumnMask> {
    prop::collection::vec(0..columns, 1..=columns).prop_map(ColumnMask::from_columns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fills only ever land in columns allowed by the access's mask, for any mix of
    /// addresses and masks.
    #[test]
    fn fills_respect_column_masks(
        accesses in prop::collection::vec((0u64..0x40_000, any::<bool>(), 0usize..4), 1..400)
    ) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        for (addr, is_write, column) in accesses {
            let mask = ColumnMask::single(column);
            match cache.access(addr, is_write, mask) {
                AccessOutcome::Miss { column: filled, .. } => prop_assert_eq!(filled, column),
                AccessOutcome::Hit { .. } | AccessOutcome::Bypass => {}
            }
        }
    }

    /// The cache never reports more valid lines than its geometry can hold, and per-column
    /// occupancy never exceeds the number of sets.
    #[test]
    fn occupancy_is_bounded(
        accesses in prop::collection::vec((0u64..0x100_000, any::<bool>()), 1..500),
        columns in 1usize..=8,
    ) {
        let cfg = CacheConfig::builder()
            .capacity_bytes(4096)
            .columns(if columns.is_power_of_two() { columns } else { 4 })
            .line_size(32)
            .build()
            .unwrap();
        let mask = ColumnMask::all(cfg.columns());
        let mut cache = ColumnCache::new(cfg);
        for (addr, w) in accesses {
            cache.access(addr, w, mask);
        }
        prop_assert!(cache.valid_lines() <= cfg.total_lines());
        for c in 0..cfg.columns() {
            prop_assert!(cache.occupancy(c).unwrap() <= cfg.sets());
        }
    }

    /// An address that just missed is cached immediately afterwards (write-allocate), and
    /// hits never change the valid-line count.
    #[test]
    fn miss_then_hit(addrs in prop::collection::vec(0u64..0x10_000, 1..200)) {
        let mut cache = ColumnCache::new(CacheConfig::default());
        let mask = ColumnMask::all(4);
        for addr in addrs {
            cache.access(addr, false, mask);
            let before = cache.valid_lines();
            prop_assert!(cache.contains(addr));
            prop_assert!(cache.access(addr, false, mask).is_hit());
            prop_assert_eq!(cache.valid_lines(), before);
        }
    }

    /// A region mapped exclusively to its own columns and pre-loaded behaves like a
    /// scratchpad: accesses to it hit no matter what else runs.
    #[test]
    fn exclusive_region_is_never_evicted(
        pollution in prop::collection::vec((0x10_0000u64..0x40_0000, any::<bool>()), 1..600)
    ) {
        let mut sys = MemorySystem::new(SystemConfig { page_size: 256, ..SystemConfig::default() }).unwrap();
        sys.map_exclusive_region(0x8000, 512, ColumnMask::single(3), Tint(9), true).unwrap();
        sys.run(pollution);
        sys.reset_stats();
        for i in 0..16u64 {
            sys.access(0x8000 + i * 32, false);
        }
        prop_assert_eq!(sys.cache_stats().misses, 0);
        prop_assert_eq!(sys.cache_stats().hits, 16);
    }

    /// Cycle accounting is consistent: total cycles grow monotonically with every access
    /// and every access costs at least the hit latency.
    #[test]
    fn cycles_are_monotone_and_bounded_below(
        accesses in prop::collection::vec((0u64..0x80_000, any::<bool>()), 1..300)
    ) {
        let mut sys = MemorySystem::with_default_cache();
        let hit = sys.config().latency.hit_latency;
        let mut last_total = 0;
        for (addr, w) in accesses {
            let cycles = sys.access(addr, w);
            prop_assert!(cycles >= hit);
            let total = sys.stats().memory_cycles;
            prop_assert!(total >= last_total + cycles);
            last_total = total;
        }
    }
}

// ---------------------------------------------------------------------------------------
// Layout invariants
// ---------------------------------------------------------------------------------------

/// Builds a random weighted graph with `n` vertices.
fn arbitrary_graph() -> impl Strategy<Value = ConflictGraph> {
    (2usize..10).prop_flat_map(|n| {
        prop::collection::vec(0u64..50, n * (n - 1) / 2).prop_map(move |weights| {
            let mut g = ConflictGraph::new();
            for i in 0..n {
                g.add_vertex(Vertex {
                    var: VarId(i as u32),
                    name: format!("v{i}"),
                    size: 64,
                    accesses: 10,
                });
            }
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if weights[k] > 0 {
                        g.set_weight(i, j, weights[k]);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy and exact colorings are always proper, and the exact coloring never uses
    /// more colors than the greedy one.
    #[test]
    fn colorings_are_proper(graph in arbitrary_graph()) {
        let greedy = greedy_coloring(&graph);
        prop_assert!(is_proper(&graph, &greedy));
        let (k, exact) = minimum_coloring(&graph, 200_000).unwrap();
        prop_assert!(is_proper(&graph, &exact));
        prop_assert_eq!(color_count(&exact), k);
        prop_assert!(k <= color_count(&greedy));
    }

    /// Column assignment never reports a lower cost than zero conflicts and its reported
    /// cost always equals the cost recomputed from the graph; with as many columns as
    /// vertices the cost is zero.
    #[test]
    fn assignment_cost_is_consistent(graph in arbitrary_graph(), columns in 1usize..6) {
        let opts = LayoutOptions::new(columns, 512);
        let a = assign_columns(&graph, &opts).unwrap();
        prop_assert_eq!(a.vertex_columns.len(), graph.vertex_count());
        prop_assert!(a.vertex_columns.iter().all(|&c| c < columns));
        prop_assert_eq!(a.cost, graph.assignment_cost(&a.vertex_columns));
        let generous = assign_columns(&graph, &LayoutOptions::new(graph.vertex_count(), 512)).unwrap();
        prop_assert_eq!(generous.cost, 0);
    }

    /// More columns never makes the achievable assignment cost worse.
    #[test]
    fn more_columns_never_hurt(graph in arbitrary_graph()) {
        let mut last = u64::MAX;
        for k in 1..=4usize {
            let a = assign_columns(&graph, &LayoutOptions::new(k, 512)).unwrap();
            prop_assert!(a.cost <= last);
            last = a.cost;
        }
    }
}

// ---------------------------------------------------------------------------------------
// Trace and workload invariants
// ---------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interval intersection is commutative and contained in both operands.
    #[test]
    fn interval_intersection_properties(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000, d in 0u64..1000) {
        let i1 = Interval::new(a.min(b), a.max(b)).unwrap();
        let i2 = Interval::new(c.min(d), c.max(d)).unwrap();
        let x = i1.intersection(&i2);
        prop_assert_eq!(x, i2.intersection(&i1));
        if let Some(x) = x {
            prop_assert!(x.first >= i1.first && x.last <= i1.last);
            prop_assert!(x.first >= i2.first && x.last <= i2.last);
            prop_assert!(i1.overlaps(&i2));
        } else {
            prop_assert!(!i1.overlaps(&i2));
        }
    }

    /// LZ77 compression round-trips on arbitrary byte strings.
    #[test]
    fn lz77_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let tokens = compress(&data, &GzipConfig::small());
        prop_assert_eq!(decompress(&tokens), data);
    }

    /// Generated gzip inputs always round-trip at any requested length and seed.
    #[test]
    fn generated_input_roundtrip(len in 0usize..3000, seed in any::<u64>()) {
        let data = generate_input(len, seed);
        prop_assert_eq!(data.len(), len);
        let tokens = compress(&data, &GzipConfig::small());
        prop_assert_eq!(decompress(&tokens), data);
    }

    /// The recorder attributes every event to the variable it was recorded against, and
    /// addresses stay within the variable's region.
    #[test]
    fn recorder_attribution(ops in prop::collection::vec((0usize..4, 0u64..64), 1..300)) {
        let mut rec = TraceRecorder::new();
        let vars: Vec<VarId> = (0..4).map(|i| rec.allocate(&format!("v{i}"), 256, 8)).collect();
        for (v, off) in &ops {
            rec.read(vars[*v], *off, 4);
        }
        let (trace, symbols) = rec.finish();
        prop_assert_eq!(trace.len(), ops.len());
        for (ev, (v, off)) in trace.iter().zip(&ops) {
            let region = symbols.region(vars[*v]).unwrap();
            prop_assert_eq!(ev.var, Some(vars[*v]));
            prop_assert_eq!(ev.addr, region.base + off);
            prop_assert!(region.contains(ev.addr));
        }
    }
}

// ---------------------------------------------------------------------------------------
// Memory-backend invariants
// ---------------------------------------------------------------------------------------

/// Builds a trace from raw `(address, is_write)` pairs.
fn trace_of(refs: &[(u64, bool)]) -> Trace {
    refs.iter()
        .map(|&(addr, w)| {
            if w {
                MemAccess::write(addr, 4)
            } else {
                MemAccess::read(addr, 4)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A column cache whose every tint resolves to the all-columns mask is
    /// indistinguishable from the plain set-associative baseline: identical hit/miss
    /// counters, cycle totals and memory traffic on any trace — even when tint control
    /// operations are interleaved (the baseline ignores them; the all-columns masks make
    /// them no-ops on the column cache too).
    #[test]
    fn all_columns_column_cache_equals_set_assoc_baseline(
        refs in prop::collection::vec((0u64..0x20_000, any::<bool>()), 1..500),
        tinted_pages in prop::collection::vec((0u64..32, 1u32..4), 0..6),
    ) {
        let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
        let columns = config.cache.columns();
        let mut column = build_backend(BackendKind::ColumnCache, config).unwrap();
        let mut baseline = build_backend(BackendKind::SetAssociative, config).unwrap();

        for backend in [&mut column, &mut baseline] {
            for &(page, tint) in &tinted_pages {
                backend.define_tint(Tint(tint), ColumnMask::all(columns)).unwrap();
                backend.tint_range(page * 256..(page + 1) * 256, Tint(tint));
            }
        }

        let refs_flat: Vec<(u64, bool)> = refs;
        let column_cycles = column.run_batch(&refs_flat);
        let baseline_cycles = baseline.run_batch(&refs_flat);

        prop_assert_eq!(column_cycles, baseline_cycles);
        prop_assert_eq!(column.cache_stats(), baseline.cache_stats());
        // Control work differs (the baseline ignores tint ops), so compare the datapath
        // statistics field by field rather than whole structs.
        prop_assert_eq!(column.stats().references, baseline.stats().references);
        prop_assert_eq!(column.stats().memory_cycles, baseline.stats().memory_cycles);
        prop_assert_eq!(column.stats().uncached_accesses, baseline.stats().uncached_accesses);
    }

    /// `snapshot()` / `reset()` round-trips to bit-identical results: replaying the same
    /// trace after a reset reproduces the exact statistics of the first replay, for any
    /// programmed tint state.
    #[test]
    fn engine_snapshot_reset_round_trips_to_identical_stats(
        refs in prop::collection::vec((0u64..0x20_000, any::<bool>()), 1..400),
        mask in arbitrary_mask(4),
        tinted_span in 1u64..0x4000,
    ) {
        let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config).unwrap();
        engine.backend_mut().define_tint(Tint(1), mask).unwrap();
        engine.backend_mut().tint_range(0..tinted_span, Tint(1));
        engine.snapshot();

        let trace = trace_of(&refs);
        let first = engine.replay("round-trip", &trace);
        engine.reset();
        let second = engine.replay("round-trip", &trace);
        prop_assert_eq!(first, second);
    }

    /// Batched replay is an optimisation, not a semantic change: any batch size produces
    /// the same result as per-reference replay through `run_on`.
    #[test]
    fn batched_replay_equals_per_reference_replay(
        refs in prop::collection::vec((0u64..0x10_000, any::<bool>()), 1..400),
        batch in 1usize..512,
    ) {
        let config = SystemConfig { page_size: 256, ..SystemConfig::default() };
        let trace = trace_of(&refs);

        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config).unwrap();
        engine.set_batch_size(batch);
        let batched = engine.replay("replay", &trace);

        let mut reference = build_backend(BackendKind::ColumnCache, config).unwrap();
        let per_ref = column_caching::core::runner::run_on(
            "replay", reference.as_mut(), &trace,
        ).unwrap();
        prop_assert_eq!(batched, per_ref);
    }
}
