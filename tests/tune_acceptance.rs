//! Acceptance tests for the `ccache-opt` search subsystem on the paper's workloads.
//!
//! The PR contract: `ccache tune` with a fixed seed is fully deterministic (identical
//! JSON across runs and across `parallel` on/off) and finds an assignment whose replayed
//! miss rate on the Fig-4 combined trace is better than or equal to the paper's
//! heuristic `assign_columns` layout, with the improvement visible in the convergence
//! table.

use ccache_json::ToJson;
use ccache_opt::{tune, GeometrySearch, StrategyKind, TuneRequest};
use ccache_sim::{CacheConfig, LatencyConfig, SystemConfig};
use ccache_workloads::corpus;

fn fig4_template() -> SystemConfig {
    SystemConfig {
        cache: CacheConfig::default(), // 2 KiB, 4 columns, 32-byte lines — the paper's
        latency: LatencyConfig::default(),
        page_size: 128,
        tlb_entries: 64,
    }
}

fn request(strategy: StrategyKind) -> TuneRequest {
    TuneRequest {
        template: fig4_template(),
        geometry: GeometrySearch::standard(),
        strategy,
        budget: 48,
        seed: 42,
        ..TuneRequest::default()
    }
}

#[test]
fn tuned_fig4_combined_beats_or_matches_the_heuristic_layout() {
    let run = corpus("mpeg-combined", true).expect("fig4 combined workload");
    for strategy in StrategyKind::ALL {
        let outcome = tune(&run.trace, &run.symbols, &request(strategy)).unwrap();
        assert!(
            outcome.best.fitness.miss_rate <= outcome.heuristic.fitness.miss_rate,
            "{strategy}: tuned miss rate {} exceeds heuristic {}",
            outcome.best.fitness.miss_rate,
            outcome.heuristic.fitness.miss_rate
        );
        assert!(outcome.improvement_vs_heuristic() >= 0.0);
        // the convergence table records the improvement: its last row is the best
        let last = outcome.convergence.last().expect("non-empty convergence");
        assert_eq!(last.best.misses, outcome.best.fitness.misses);
        assert!(outcome.replays <= outcome.budget);
    }
}

#[test]
fn fig4_combined_tune_json_is_identical_across_runs_and_schedules() {
    let run = corpus("mpeg-combined", true).expect("fig4 combined workload");
    let req = request(StrategyKind::Evolutionary);
    let first = tune(&run.trace, &run.symbols, &req).unwrap();
    let second = tune(&run.trace, &run.symbols, &req).unwrap();
    let serial = tune(
        &run.trace,
        &run.symbols,
        &TuneRequest {
            serial: true,
            ..req
        },
    )
    .unwrap();
    let a = first.to_json().pretty();
    assert_eq!(a, second.to_json().pretty(), "re-run changed the artefact");
    assert_eq!(a, serial.to_json().pretty(), "parallel schedule leaked in");
}

#[test]
fn evolutionary_search_strictly_improves_on_the_heuristic_here() {
    // Not guaranteed in general — but on the quick Fig-4 combined trace the joint
    // geometry+assignment search has real headroom, and losing it would mean the
    // search subsystem regressed. (The determinism tests above make this stable.)
    let run = corpus("mpeg-combined", true).expect("fig4 combined workload");
    let outcome = tune(
        &run.trace,
        &run.symbols,
        &request(StrategyKind::Evolutionary),
    )
    .unwrap();
    assert!(
        outcome.best.fitness.misses < outcome.heuristic.fitness.misses,
        "expected a strict improvement: best {} vs heuristic {}",
        outcome.best.fitness.misses,
        outcome.heuristic.fitness.misses
    );
}
