//! Property tests of the observer contract: watching a replay never changes it.
//!
//! The streaming [`ReplayObserver`] API promises that (a) an observed replay produces
//! **byte-identical** statistics and artefacts to an unobserved one, and (b) the
//! windowed time series *reconciles*: its per-window deltas sum to the final
//! [`CacheStats`]-derived totals of the run. Both halves are stated here over random
//! traces, window sizes, backends and batch sizes.

use ccache_json::{Json, ToJson};
use column_caching::core::engine::ReplayEngine;
use column_caching::core::observe::{ReplayEvent, ReplayObserver, SeriesRecorder, WindowSample};
use column_caching::exp::exec::{ExecOptions, ObserveOptions};
use column_caching::exp::ExperimentSpec;
use column_caching::prelude::*;
use column_caching::sim::{BackendKind, SystemConfig};
use column_caching::trace::synth::sequential_scan;
use proptest::prelude::*;

fn config() -> SystemConfig {
    SystemConfig {
        page_size: 256,
        ..SystemConfig::default()
    }
}

/// A synthetic trace mixing a hot region, a stream and a revisit, sized by the inputs.
fn mixed_trace(hot_passes: usize, stream_kib: u64) -> Trace {
    let hot = sequential_scan(0x0, 512, 32, 4, hot_passes, None);
    let stream = sequential_scan(0x10_0000, stream_kib * 1024, 32, 4, 1, None);
    let again = sequential_scan(0x0, 512, 32, 4, 1, None);
    Trace::concat([&hot, &stream, &again])
}

/// An observer that counts callbacks but records nothing — attaching it must be free.
#[derive(Default)]
struct CountingObserver {
    windows: usize,
    events: usize,
}

impl ReplayObserver for CountingObserver {
    fn on_window(&mut self, _sample: &WindowSample) {
        self.windows += 1;
    }
    fn on_event(&mut self, _event: &ReplayEvent) {
        self.events += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Observed and unobserved replays produce identical `RunResult`s for every
    /// backend, window size and batch size, and the window series reconciles with the
    /// final statistics.
    #[test]
    fn observed_replay_is_byte_identical_and_reconciles(
        hot_passes in 1usize..4,
        stream_kib in 1u64..24,
        window in 1u64..5000,
        batch in 1usize..3000,
        backend_idx in 0usize..BackendKind::ALL.len(),
    ) {
        let backend = BackendKind::ALL[backend_idx];
        let trace = mixed_trace(hot_passes, stream_kib);

        let mut plain = ReplayEngine::new(backend, config()).unwrap();
        plain.set_batch_size(batch);
        let expected = plain.replay("x", &trace);

        let mut observed = ReplayEngine::new(backend, config()).unwrap();
        observed.set_batch_size(batch);
        let mut recorder = SeriesRecorder::new(window);
        let result = observed.replay_observed("x", &trace, window, &mut recorder);
        prop_assert_eq!(&result, &expected);

        let series = recorder.into_series();
        prop_assert_eq!(series.total_references(), result.references);
        prop_assert_eq!(series.total_misses(), result.misses);
        prop_assert_eq!(series.total_hits(), result.hits);
        prop_assert_eq!(series.total_memory_cycles(), result.memory_cycles);
        prop_assert_eq!(series.samples.len() as u64, result.references.div_ceil(window));
        // every full window holds exactly `window` references; starts are contiguous
        for (i, s) in series.samples.iter().enumerate() {
            prop_assert_eq!(s.index, i as u64);
            prop_assert_eq!(s.start, i as u64 * window);
            if (i as u64) < result.references / window {
                prop_assert_eq!(s.references, window);
            }
        }
    }

    /// A counting observer sees exactly the promised callbacks and changes nothing —
    /// including through the streaming (reader-based) replay path.
    #[test]
    fn streaming_observation_matches_in_memory(
        stream_kib in 1u64..16,
        window in 1u64..2000,
    ) {
        let trace = mixed_trace(2, stream_kib);
        let mut bytes = Vec::new();
        column_caching::trace::binfmt::write_trace(&trace, &mut bytes).unwrap();

        let mut in_memory = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let expected = in_memory.replay("x", &trace);

        let mut engine = ReplayEngine::new(BackendKind::ColumnCache, config()).unwrap();
        let mut reader = column_caching::trace::binfmt::TraceReader::new(&bytes[..]).unwrap();
        let mut counter = CountingObserver::default();
        let streamed = engine
            .replay_reader_observed("x", &mut reader, window, &mut counter)
            .unwrap();
        prop_assert_eq!(&streamed, &expected);
        prop_assert_eq!(counter.windows as u64, expected.references.div_ceil(window));
        prop_assert_eq!(counter.events, 0);
    }
}

/// The dynamically remapped (multi-phase) path: `run_dynamic_observed` returns results
/// byte-identical to `run_dynamic`, emits phase/remap events in order with run-global
/// reference offsets, and the recorder's cross-phase rebasing keeps window starts
/// contiguous across the whole run.
#[test]
fn dynamic_observation_is_byte_identical_and_events_are_ordered() {
    use column_caching::core::dynamic::{run_dynamic, run_dynamic_observed};
    use column_caching::core::partition::PartitionConfig;
    use column_caching::workloads::mpeg::{run_phases, MpegConfig};

    let (phases, symbols) = run_phases(&MpegConfig::small());
    let cfg = PartitionConfig::default();
    let plain = run_dynamic(&phases, &symbols, &cfg).unwrap();

    let window = 1000u64;
    let mut recorder = SeriesRecorder::new(window);
    let observed = run_dynamic_observed(&phases, &symbols, &cfg, window, &mut recorder).unwrap();
    assert_eq!(
        observed, plain,
        "observation must not change the dynamic run"
    );

    let series = recorder.into_series();
    let total_refs: u64 = plain.phases.iter().map(|p| p.result.references).sum();
    assert_eq!(series.total_references(), total_refs);
    assert_eq!(
        series.total_misses(),
        plain.phases.iter().map(|p| p.result.misses).sum::<u64>()
    );

    // per phase: start, remap, end — anchored at the cumulative reference offsets
    assert_eq!(series.events.len(), 3 * plain.phases.len());
    let mut cumulative = 0u64;
    for (i, phase) in plain.phases.iter().enumerate() {
        let [start, remap, end] = &series.events[3 * i..3 * i + 3] else {
            unreachable!("three events per phase");
        };
        assert_eq!(
            start,
            &ReplayEvent::PhaseStart {
                name: phase.name.clone(),
                at_ref: cumulative
            }
        );
        assert!(matches!(remap, ReplayEvent::Remap { label, at_ref, .. }
                         if label == &phase.name && *at_ref == cumulative));
        cumulative += phase.result.references;
        assert_eq!(
            end,
            &ReplayEvent::PhaseEnd {
                name: phase.name.clone(),
                at_ref: cumulative,
                cycles: phase.result.total_cycles()
            }
        );
    }

    // windows tile the whole run contiguously despite per-phase engine resets
    let mut expected_start = 0u64;
    for (i, s) in series.samples.iter().enumerate() {
        assert_eq!(s.index, i as u64);
        assert_eq!(s.start, expected_start);
        expected_start += s.references;
    }
    assert_eq!(expected_start, total_refs);
}

/// Executing a spec with a counting/recording observer attached yields an artefact that
/// — after deleting the `time_series` blocks — is **byte-identical** to the unobserved
/// artefact of the same spec.
#[test]
fn observed_artefacts_are_byte_identical_modulo_time_series() {
    let spec = ExperimentSpec::parse_str(
        r#"{"name": "parity", "replay": [{
            "workloads": ["fir", "mpeg-dequant"],
            "backends": ["column", "set-assoc"],
            "policies": ["shared", "heuristic"],
            "label": "full"
        }]}"#,
    )
    .unwrap();
    let plain = column_caching::exp::run_spec(
        &spec,
        &ExecOptions {
            quick: true,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    // Observation AND telemetry together must still leave the artefact byte-identical
    // (modulo the time_series blocks observation adds): metrics are quarantined in the
    // registry, never in result bytes.
    let registry = column_caching::telemetry::Registry::new();
    let observed = column_caching::exp::run_spec(
        &spec,
        &ExecOptions {
            quick: true,
            observe: Some(ObserveOptions { window: 777 }),
            telemetry: Some(registry.clone()),
        },
    )
    .unwrap();

    fn strip_time_series(doc: &mut Json) {
        match doc {
            Json::Obj(pairs) => {
                pairs.retain(|(key, _)| key != "time_series");
                for (_, value) in pairs {
                    strip_time_series(value);
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(strip_time_series),
            _ => {}
        }
    }
    let strip = |artefact: &column_caching::exp::Artefact| -> String {
        let mut doc = artefact.to_json();
        strip_time_series(&mut doc);
        doc.pretty()
    };
    assert_ne!(
        strip(&plain),
        observed.to_json().pretty(),
        "the observed artefact must actually contain time_series blocks"
    );
    assert_eq!(
        strip(&plain),
        strip(&observed),
        "observation must not change anything but the time_series blocks"
    );

    // the registry actually watched the run: every job timed, every replay counted
    let snapshot = registry.snapshot_deterministic();
    assert!(
        registry.counter_value("engine.replays") >= observed.outcomes.len() as u64,
        "each planned job replays at least once"
    );
    assert_eq!(
        snapshot
            .get("counters")
            .and_then(|c| c.get("exp.groups"))
            .and_then(ccache_json::Json::as_u64)
            .map(|groups| groups >= 1),
        Some(true),
        "the executor records its replay groups"
    );

    // and the series totals reconcile with each job's final statistics
    for outcome in &observed.outcomes {
        let column_caching::exp::JobOutcome::Replay { result, series, .. } = outcome else {
            panic!("parity spec plans plain replays only");
        };
        let series = series.as_ref().expect("observed runs carry series");
        assert_eq!(series.window, 777);
        assert_eq!(series.total_references(), result.references);
        assert_eq!(series.total_misses(), result.misses);
    }
}
