//! End-to-end integration test of the Figure 5 pipeline: gzip jobs → round-robin schedule
//! → column-cache simulation → per-job CPI, asserting the paper's qualitative claims.

use column_caching::core::multitask::{
    quantum_sweep, run_multitasking, MultitaskConfig, SharingPolicy,
};
use column_caching::workloads::gzipsim::{run_gzip_job, GzipConfig};
use column_caching::workloads::multitask::Job;

fn jobs() -> Vec<Job> {
    let cfg = GzipConfig {
        input_len: 6 * 1024,
        ..GzipConfig::default()
    };
    (0..3u64)
        .map(|j| {
            let run = run_gzip_job(
                &cfg.with_seed(41 + j),
                0x100_0000 * (j + 1),
                &format!("gzip-{}", (b'A' + j as u8) as char),
            );
            Job::new(run.name.clone(), run.trace)
        })
        .collect()
}

const QUANTA: [usize; 6] = [4, 64, 1024, 4096, 16384, 262_144];

#[test]
fn figure5_shared_cache_cpi_depends_on_the_quantum() {
    let jobs = jobs();
    let shared = quantum_sweep(
        &jobs,
        &QUANTA,
        &MultitaskConfig::cache_16k(),
        SharingPolicy::Shared,
        "gzip.16k",
    )
    .unwrap();
    // CPI at the smallest quantum is clearly higher than in the batch regime.
    let small_q = shared.points.first().unwrap().1;
    let batch = shared.points.last().unwrap().1;
    assert!(
        small_q > batch * 1.1,
        "expected quantum sensitivity, got {small_q:.3} vs {batch:.3}"
    );
    assert!(shared.variation() > 0.1);
}

#[test]
fn figure5_mapped_column_cache_is_flat_and_helps_the_critical_job() {
    let jobs = jobs();
    let cfg = MultitaskConfig::cache_16k();
    let shared = quantum_sweep(&jobs, &QUANTA, &cfg, SharingPolicy::Shared, "shared").unwrap();
    let mapped = quantum_sweep(&jobs, &QUANTA, &cfg, SharingPolicy::Mapped, "mapped").unwrap();
    // mapped variation is much smaller than shared variation
    assert!(mapped.variation() < shared.variation() / 2.0);
    // and at small quanta the mapped cache is strictly better for job A
    assert!(mapped.points[0].1 < shared.points[0].1);
    assert!(mapped.points[1].1 < shared.points[1].1);
}

#[test]
fn figure5_large_cache_reduces_cpi_and_variation() {
    let jobs = jobs();
    let small = quantum_sweep(
        &jobs,
        &QUANTA,
        &MultitaskConfig::cache_16k(),
        SharingPolicy::Shared,
        "16k",
    )
    .unwrap();
    let large = quantum_sweep(
        &jobs,
        &QUANTA,
        &MultitaskConfig::cache_128k(),
        SharingPolicy::Shared,
        "128k",
    )
    .unwrap();
    assert!(large.max_cpi() < small.max_cpi());
    assert!(large.variation() <= small.variation());
    // the 128 KiB mapped configuration stays flat too
    let large_mapped = quantum_sweep(
        &jobs,
        &QUANTA,
        &MultitaskConfig::cache_128k(),
        SharingPolicy::Mapped,
        "128k mapped",
    )
    .unwrap();
    assert!(large_mapped.variation() < 0.1);
}

#[test]
fn figure5_other_jobs_still_make_progress_under_mapping() {
    let jobs = jobs();
    let cfg = MultitaskConfig::cache_16k();
    let run = run_multitasking(&jobs, 1024, &cfg, SharingPolicy::Mapped).unwrap();
    // every job retires all of its references
    for (j, job) in jobs.iter().enumerate() {
        assert_eq!(run.jobs[j].references, job.trace.len() as u64);
    }
    // the non-critical jobs pay for the smaller share of the cache but not absurdly so
    let critical = run.jobs[0].cpi;
    for other in &run.jobs[1..] {
        assert!(other.cpi >= critical * 0.8);
        assert!(other.cpi < critical * 6.0);
    }
}

#[test]
fn figure5_batch_scheduling_converges_for_shared_and_mapped() {
    // At a quantum larger than every job, the schedule degenerates to batch processing;
    // the shared cache then behaves like a private cache and approaches the mapped CPI.
    let jobs = jobs();
    let cfg = MultitaskConfig::cache_16k();
    let shared = run_multitasking(&jobs, usize::MAX / 2, &cfg, SharingPolicy::Shared).unwrap();
    let mapped = run_multitasking(&jobs, usize::MAX / 2, &cfg, SharingPolicy::Mapped).unwrap();
    let a = shared.critical_job().cpi;
    let b = mapped.critical_job().cpi;
    assert!(
        (a - b).abs() / a < 0.25,
        "batch CPIs should be close: shared {a:.3} vs mapped {b:.3}"
    );
}
