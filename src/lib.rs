//! # column-caching
//!
//! A reproduction of *"Application-Specific Memory Management for Embedded Systems Using
//! Software-Controlled Caches"* (Chiou, Jain, Devadas, Rudolph — DAC 2000 / MIT LCS CSG
//! Memo 427) as a Rust workspace.
//!
//! The paper proposes **column caching**: a small hardware change to a set-associative
//! cache that lets software restrict, per page, which cache *columns* (ways) an access may
//! replace into. With that mechanism software can partition the cache between data
//! structures or tasks, emulate scratchpad memory inside the cache, and change the
//! partition dynamically. The paper couples the mechanism with a **data-layout algorithm**
//! that assigns program variables to columns by building a weighted conflict graph and
//! coloring it.
//!
//! This façade crate re-exports the workspace crates:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] (`ccache-sim`) | set-associative/column cache, tints, TLB, page table, scratchpad, memory system, timing model |
//! | [`trace`] (`ccache-trace`) | memory-reference traces, variable regions, access profiles, lifetimes |
//! | [`layout`] (`ccache-layout`) | conflict graph, profile/static weights, exact + heuristic coloring, column assignment, dynamic layout |
//! | [`workloads`] (`ccache-workloads`) | instrumented MPEG kernels (dequant/plus/idct), gzip-like compressor, FIR/matmul/histogram/triad, round-robin multitasking |
//! | [`core`] (`ccache-core`) | placement, experiment runners: Figure 4 partition sweep, dynamic column-cache run, Figure 5 multitasking CPI sweep |
//! | [`opt`] (`ccache-opt`) | autotuning: joint search over cache geometries and column assignments with replay-driven fitness |
//! | [`exp`] (`ccache-exp`) | declarative experiment layer: JSON specs, deduplicating planner, parallel executor, unified artefacts |
//! | [`telemetry`] (`ccache-telemetry`) | process-wide counters, gauges, histograms and spans with deterministic snapshots (timing quarantined) |
//! | `ccache-serve` | the `ccache serve` service: NDJSON-over-TCP sessions, a worker pool, and a content-addressed result store keyed by [`Session::spec_key`] |
//!
//! # Quick start: the `Session` facade
//!
//! [`Session`] is the library's front door: a builder configures geometry, backend
//! (through the [`BackendRegistry`](sim::BackendRegistry)), scale and observation once,
//! and the session then drives replays, experiment specs and tuning runs.
//!
//! ```
//! use column_caching::Session;
//!
//! let session = Session::builder().quick(true).observe(512).build()?;
//! // Replay a built-in workload; the observer yields a windowed time series.
//! let replayed = session.replay_corpus("mpeg-dequant")?;
//! assert!(replayed.result.references > 0);
//! assert_eq!(
//!     replayed.series.unwrap().total_misses(),
//!     replayed.result.misses,
//! );
//! # Ok::<(), column_caching::SessionError>(())
//! ```
//!
//! The per-crate APIs remain available underneath for anything the facade does not
//! cover:
//!
//! ```
//! use column_caching::prelude::*;
//!
//! // Run the paper's dequant kernel and sweep the scratchpad/cache partition (Fig. 4a).
//! let run = run_dequant(&MpegConfig::small());
//! let sweep = partition_sweep(&run, &PartitionConfig::default())?;
//! // dequant's working set fits in 2 KiB, so the all-scratchpad point wins.
//! assert_eq!(sweep.best().cache_columns, 0);
//! # Ok::<(), column_caching::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;
pub mod session;

pub use ccache_core as core;
pub use ccache_exp as exp;
pub use ccache_layout as layout;
pub use ccache_opt as opt;
pub use ccache_sim as sim;
pub use ccache_telemetry as telemetry;
pub use ccache_trace as trace;
pub use ccache_workloads as workloads;

pub use bench::{
    BenchEnvironment, BenchMode, BenchRatios, BenchReport, BenchRequest, TuneBenchMode,
    TuneBenchRatios, TuneBenchReport,
};
pub use session::{Replayed, Session, SessionBuilder, SessionError};

/// The most commonly used items from every crate in the workspace.
pub mod prelude {
    pub use crate::bench::{BenchReport, BenchRequest};
    pub use crate::session::{Replayed, Session, SessionBuilder, SessionError};
    pub use ccache_core::prelude::*;
    pub use ccache_layout::prelude::*;
    pub use ccache_opt::prelude::*;
    pub use ccache_sim::prelude::*;
    pub use ccache_telemetry::prelude::*;
    pub use ccache_trace::{AccessKind, MemAccess, SymbolTable, Trace, TraceRecorder, VarId};
    pub use ccache_workloads::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let cfg = crate::sim::CacheConfig::default();
        assert_eq!(cfg.columns(), 4);
        let mask = crate::sim::ColumnMask::all(4);
        assert_eq!(mask.count(), 4);
    }
}
