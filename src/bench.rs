//! The replay throughput harness behind [`Session::bench`](crate::Session::bench) and
//! the `ccache bench` CLI command.
//!
//! The harness replays one calibrated corpus workload through every replay datapath the
//! engine offers — per-reference, batched, streamed from the binary trace format, and
//! checkpoint-parallel — and reports references/second for each, plus scaling curves
//! over batch size and segment count. Numbers from *different machines* are not
//! comparable; what is comparable, and what CI gates on, are the **ratios** between
//! modes on the same machine (batched vs per-reference, streamed vs per-reference),
//! which measure the datapath overheads this crate controls rather than host speed.
//!
//! On request ([`BenchRequest::tune`]) the harness also benchmarks the **tuner's
//! fitness datapath**: candidate evaluations per second over a fixed duplicate-heavy
//! batch through every [`FitnessMode`] — fresh engines, pooled engines, pooled with
//! warm-up checkpoint reuse — under both schedules, with machine-independent
//! datapath-vs-datapath ratios ([`TuneBenchRatios`]) that CI gates the same way.
//!
//! Every mode must produce an identical [`RunResult`] — the harness asserts this on
//! every run (and the tune section asserts every datapath reproduces the fresh-engine
//! oracle), so a benchmark can never get faster by silently computing something
//! else. All timing-dependent values are confined to [`BenchTiming`],
//! [`BenchRatios`], [`TuneBenchMode`] and [`TuneBenchRatios`]; everything else in a
//! [`BenchReport`] is deterministic, which is what lets CI `cmp` two artefacts modulo
//! the timing fields.

use crate::session::{Session, SessionError};
use ccache_core::runner::run_on;
use ccache_core::{CacheMapping, Candidate, FitnessMode, RegionMapping, ReplayFitness, RunResult};
use ccache_sim::backend::BackendKind;
use ccache_sim::{ColumnMask, SystemConfig};
use ccache_trace::Trace;
use std::time::Instant;

/// What [`Session::bench`](crate::Session::bench) should measure.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRequest {
    /// Corpus workload to replay (see [`ccache_workloads::CORPUS_NAMES`]).
    pub workload: String,
    /// Timed repetitions per mode; the fastest wins (reduces scheduler noise).
    pub iterations: usize,
    /// Segment count for the checkpoint-parallel mode.
    pub segments: usize,
    /// Batch sizes for the batched-replay scaling curve.
    pub batch_sweep: Vec<usize>,
    /// Segment counts for the checkpoint-parallel scaling curve.
    pub segment_sweep: Vec<usize>,
    /// Whether to also benchmark the tuner's fitness datapath (see [`TuneBenchReport`]).
    pub tune: bool,
}

impl Default for BenchRequest {
    /// The calibrated default: the combined MPEG trace (the paper's Figure 4 workload),
    /// three timed repetitions, four segments, and small power-of-four sweeps.
    fn default() -> Self {
        BenchRequest {
            workload: "mpeg-combined".to_owned(),
            iterations: 3,
            segments: 4,
            batch_sweep: vec![64, 256, 1024, 4096, 16384],
            segment_sweep: vec![1, 2, 4, 8],
            tune: false,
        }
    }
}

/// Where a benchmark ran: enough metadata to judge whether two artefacts are
/// comparable, not enough to identify a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnvironment {
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// Available parallelism reported by the host.
    pub threads: usize,
    /// Whether the binary was compiled with debug assertions (a debug-profile bench is
    /// not comparable to a release one).
    pub debug_assertions: bool,
    /// Whether the `parallel` feature was compiled in.
    pub parallel: bool,
}

impl BenchEnvironment {
    /// Captures the current process's environment.
    pub fn capture() -> Self {
        BenchEnvironment {
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            debug_assertions: cfg!(debug_assertions),
            parallel: cfg!(feature = "parallel"),
        }
    }
}

/// Wall-clock measurement of one replay mode. These are the only host-dependent
/// numbers in a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchTiming {
    /// Best (minimum) wall-clock seconds over the timed repetitions.
    pub elapsed_s: f64,
    /// References per second at the best repetition (0 for an empty trace).
    pub refs_per_sec: f64,
}

impl BenchTiming {
    fn from_best(best: std::time::Duration, references: u64) -> Self {
        let elapsed_s = best.as_secs_f64();
        BenchTiming {
            elapsed_s,
            refs_per_sec: if elapsed_s > 0.0 {
                references as f64 / elapsed_s
            } else {
                0.0
            },
        }
    }
}

/// One replay mode's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMode {
    /// Mode name: `per_reference`, `batched`, `streamed` or `checkpoint_parallel`.
    pub mode: &'static str,
    /// Timed repetitions the measurement took the minimum over.
    pub iterations: usize,
    /// The wall-clock measurement.
    pub timing: BenchTiming,
}

/// One point of a scaling curve (batch size or segment count).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSweepPoint {
    /// The swept value: a batch size or a segment count.
    pub value: u64,
    /// The wall-clock measurement at this point.
    pub timing: BenchTiming,
}

/// Throughput ratios between modes — the machine-independent numbers CI gates on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRatios {
    /// Batched replay speedup over per-reference replay.
    pub batched_vs_per_reference: f64,
    /// Streamed (binary-format) replay speedup over per-reference replay.
    pub streamed_vs_per_reference: f64,
    /// Checkpoint-parallel replay speedup over batched replay (thread-count dependent;
    /// informational, never gated).
    pub checkpoint_parallel_vs_batched: f64,
}

/// One measured point of the tuner's fitness datapath: an evaluation mode under one
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneBenchMode {
    /// Datapath: `fresh`, `pooled` or `pooled_checkpoint` (see
    /// [`FitnessMode`]).
    pub mode: &'static str,
    /// Schedule: `serial` or `parallel` (thread fan-out of full replays).
    pub schedule: &'static str,
    /// Timed repetitions the measurement took the minimum over.
    pub iterations: usize,
    /// Best (minimum) wall-clock seconds for one full candidate batch.
    pub elapsed_s: f64,
    /// Candidate evaluations per second at the best repetition.
    pub evals_per_sec: f64,
}

/// Fitness-datapath throughput ratios — the machine-independent numbers CI gates on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneBenchRatios {
    /// Pooled-engine evaluation speedup over fresh-engine evaluation (parallel
    /// schedule on both sides).
    pub pooled_vs_fresh: f64,
    /// Pooled + warm-up-checkpoint evaluation speedup over fresh-engine evaluation
    /// (parallel schedule on both sides).
    pub pooled_checkpoint_vs_fresh: f64,
    /// Parallel-schedule speedup over serial, both on the full datapath
    /// (thread-count dependent; informational, never gated).
    pub parallel_vs_serial: f64,
}

/// The tuner fitness-datapath section of a bench run (requested via
/// [`BenchRequest::tune`]).
///
/// The harness evaluates one fixed candidate batch — duplicate-heavy and
/// geometry-diverse, shaped like a converging tuner population over the session's
/// geometry — through every [`FitnessMode`] under both schedules, asserting that all
/// of them reproduce the fresh-engine oracle's results exactly. Timed batches run
/// against a warm fitness (pool populated, warm-ups recorded), so the throughput is
/// the steady state a tune loop sees.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneBenchReport {
    /// Candidates in the benchmark batch.
    pub candidates: usize,
    /// Distinct candidates in the batch (the rest are duplicates).
    pub distinct_candidates: usize,
    /// Distinct geometries in the batch.
    pub geometries: usize,
    /// Per-mode measurements, in a fixed order.
    pub modes: Vec<TuneBenchMode>,
    /// Datapath throughput ratios.
    pub ratios: TuneBenchRatios,
}

impl TuneBenchReport {
    /// The measurement for `mode` under `schedule`, if it was run.
    pub fn mode(&self, mode: &str, schedule: &str) -> Option<&TuneBenchMode> {
        self.modes
            .iter()
            .find(|m| m.mode == mode && m.schedule == schedule)
    }
}

/// The result of one [`Session::bench`](crate::Session::bench) run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The workload that was replayed.
    pub workload: String,
    /// Whether the workload was built at quick scale.
    pub quick: bool,
    /// The backend every mode replayed on.
    pub backend: String,
    /// References in the replayed trace.
    pub references: u64,
    /// Where the benchmark ran.
    pub environment: BenchEnvironment,
    /// The replay statistics every mode produced (asserted identical across modes).
    pub result: RunResult,
    /// Per-mode measurements, in a fixed order.
    pub modes: Vec<BenchMode>,
    /// Batched-replay throughput over the requested batch sizes.
    pub batch_sweep: Vec<BenchSweepPoint>,
    /// Checkpoint-parallel throughput over the requested segment counts.
    pub segment_sweep: Vec<BenchSweepPoint>,
    /// Mode-vs-mode throughput ratios.
    pub ratios: BenchRatios,
    /// The tuner fitness-datapath section, when requested.
    pub tune: Option<TuneBenchReport>,
}

impl BenchReport {
    /// The measurement for `mode`, if it was run.
    pub fn mode(&self, mode: &str) -> Option<&BenchMode> {
        self.modes.iter().find(|m| m.mode == mode)
    }
}

/// Runs `body` `iterations` times and keeps the best duration it reports. The body
/// times itself (via [`Instant`]) so untimed preparation — engine resets, reader
/// construction — stays outside the measured region.
fn time_mode<T>(
    iterations: usize,
    references: u64,
    mut body: impl FnMut() -> (T, std::time::Duration),
) -> (T, BenchTiming) {
    let mut best = std::time::Duration::MAX;
    let mut last = None;
    for _ in 0..iterations.max(1) {
        let (value, elapsed) = body();
        best = best.min(elapsed);
        last = Some(value);
    }
    (
        last.expect("at least one iteration ran"),
        BenchTiming::from_best(best, references),
    )
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Builds the fixed tune-bench candidate batch over `base` and one alternative
/// geometry: per geometry, a duplicate-heavy column-cache population (one mapping
/// repeated, a few distinct), plus baseline-backend candidates whose column mappings
/// differ but whose *hardware-visible* state does not — the shape where the pooled
/// datapath's signature rule pays off exactly as it does in a real tune loop.
fn tune_candidates(base: SystemConfig) -> Vec<Candidate> {
    let page = base.page_size;
    let columns = base.cache.columns();
    let alt = SystemConfig {
        tlb_entries: base.tlb_entries + base.tlb_entries.max(2) / 2,
        ..base
    };
    let mapping = |k: usize| {
        let mut m = CacheMapping::new();
        m.map(
            (k as u64 + 1) * 16 * page,
            4 * page,
            RegionMapping::Columns {
                mask: ColumnMask::single(k % columns),
            },
        );
        m
    };
    let mut batch = Vec::new();
    for config in [base, alt] {
        for _ in 0..12 {
            batch.push(Candidate::column_cache(config, mapping(0)));
        }
        for k in 1..5 {
            batch.push(Candidate::column_cache(config, mapping(k)));
        }
    }
    for k in 0..8 {
        batch.push(Candidate {
            config: base,
            mapping: mapping(k),
            backend: BackendKind::SetAssociative,
        });
    }
    for k in 0..8 {
        batch.push(Candidate {
            config: alt,
            mapping: mapping(k),
            backend: BackendKind::IdealScratchpad,
        });
    }
    batch
}

/// Benchmarks the tuner's fitness datapath: the fixed candidate batch through every
/// [`FitnessMode`] under both schedules, self-checked against the fresh-engine oracle.
fn run_tune(
    trace: &Trace,
    config: SystemConfig,
    iterations: usize,
) -> Result<TuneBenchReport, SessionError> {
    let batch = tune_candidates(config);
    let mut seen: Vec<&Candidate> = Vec::new();
    for candidate in &batch {
        if seen.iter().all(|d| *d != candidate) {
            seen.push(candidate);
        }
    }

    let oracle: Vec<RunResult> = ReplayFitness::new(trace.clone())
        .with_mode(FitnessMode::Fresh)
        .serial()
        .evaluate_batch(&batch)
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(|e| SessionError::BadRequest(format!("tune bench candidate failed: {e}")))?;

    let mut modes = Vec::new();
    for (mode, mode_name) in [
        (FitnessMode::Fresh, "fresh"),
        (FitnessMode::Pooled, "pooled"),
        (FitnessMode::PooledCheckpoint, "pooled_checkpoint"),
    ] {
        for (schedule, serial) in [("serial", true), ("parallel", false)] {
            let mut fitness = ReplayFitness::new(trace.clone()).with_mode(mode);
            if serial {
                fitness = fitness.serial();
            }
            // Untimed warm-up pass: populates the pool and recorded warm-ups, and
            // doubles as the self-check against the oracle.
            let first = fitness.evaluate_batch(&batch);
            for (got, want) in first.iter().zip(&oracle) {
                if got.as_ref().ok() != Some(want) {
                    return Err(SessionError::BadRequest(format!(
                        "bench self-check failed: {mode_name}/{schedule} fitness evaluation \
                         disagreed with the fresh-engine oracle"
                    )));
                }
            }
            let (_, timing) = time_mode(iterations, batch.len() as u64, || {
                let start = Instant::now();
                let results = fitness.evaluate_batch(&batch);
                (results, start.elapsed())
            });
            modes.push(TuneBenchMode {
                mode: mode_name,
                schedule,
                iterations,
                elapsed_s: timing.elapsed_s,
                evals_per_sec: timing.refs_per_sec,
            });
        }
    }

    let rate = |mode: &str, schedule: &str| {
        modes
            .iter()
            .find(|m| m.mode == mode && m.schedule == schedule)
            .map(|m| m.evals_per_sec)
            .unwrap_or(0.0)
    };
    let ratios = TuneBenchRatios {
        pooled_vs_fresh: ratio(rate("pooled", "parallel"), rate("fresh", "parallel")),
        pooled_checkpoint_vs_fresh: ratio(
            rate("pooled_checkpoint", "parallel"),
            rate("fresh", "parallel"),
        ),
        parallel_vs_serial: ratio(
            rate("pooled_checkpoint", "parallel"),
            rate("pooled_checkpoint", "serial"),
        ),
    };
    Ok(TuneBenchReport {
        candidates: batch.len(),
        distinct_candidates: seen.len(),
        geometries: 2,
        modes,
        ratios,
    })
}

/// Runs the harness for a session. Called through [`Session::bench`](crate::Session::bench).
pub(crate) fn run(session: &Session, request: &BenchRequest) -> Result<BenchReport, SessionError> {
    let run = ccache_workloads::corpus(&request.workload, session.quick()).ok_or_else(|| {
        SessionError::BadRequest(format!(
            "unknown workload '{}' (expected one of: {})",
            request.workload,
            ccache_workloads::CORPUS_NAMES.join(", ")
        ))
    })?;
    let trace = &run.trace;
    let references = trace.len() as u64;
    let iterations = request.iterations.max(1);
    let mut engine = session.engine()?;
    let default_batch = engine.batch_size();

    // Per-reference replay: the seed's loop, one `access` call per event.
    let (per_ref_result, per_ref) = time_mode(iterations, references, || {
        engine.reset();
        let start = Instant::now();
        let result = run_on("bench", engine.backend_mut(), trace).expect("per-reference replay");
        (result, start.elapsed())
    });

    // Batched replay: the default engine datapath.
    let (batched_result, batched) = time_mode(iterations, references, || {
        engine.reset();
        let start = Instant::now();
        let result = engine.replay("bench", trace);
        (result, start.elapsed())
    });

    // Streamed replay: decode the binary trace format batch by batch.
    let mut encoded = Vec::new();
    ccache_trace::binfmt::write_trace(trace, &mut encoded)
        .map_err(|e| SessionError::BadRequest(format!("failed to encode trace: {e}")))?;
    let (streamed_result, streamed) = time_mode(iterations, references, || {
        engine.reset();
        let mut reader =
            ccache_trace::binfmt::TraceReader::new(&encoded[..]).expect("in-memory header");
        let start = Instant::now();
        let result = engine
            .replay_reader("bench", &mut reader)
            .expect("in-memory stream");
        (result, start.elapsed())
    });

    // Checkpoint-parallel replay: warm up once (untimed), then time the parallel phase.
    engine.reset();
    let checkpoints = engine.checkpoint(trace, request.segments.max(1));
    let (parallel_result, parallel) = time_mode(iterations, references, || {
        let start = Instant::now();
        let result = checkpoints.replay("bench", trace);
        (result, start.elapsed())
    });

    for (mode, result) in [
        ("batched", &batched_result),
        ("streamed", &streamed_result),
        ("checkpoint_parallel", &parallel_result),
    ] {
        if *result != per_ref_result {
            return Err(SessionError::BadRequest(format!(
                "bench self-check failed: {mode} replay disagreed with per-reference replay"
            )));
        }
    }

    let mut batch_sweep = Vec::with_capacity(request.batch_sweep.len());
    for &batch in &request.batch_sweep {
        engine.set_batch_size(batch);
        let (_, timing) = time_mode(1, references, || {
            engine.reset();
            let start = Instant::now();
            let result = engine.replay("bench", trace);
            (result, start.elapsed())
        });
        batch_sweep.push(BenchSweepPoint {
            value: batch as u64,
            timing,
        });
    }
    engine.set_batch_size(default_batch);

    let mut segment_sweep = Vec::with_capacity(request.segment_sweep.len());
    for &segments in &request.segment_sweep {
        engine.reset();
        let checkpoints = engine.checkpoint(trace, segments.max(1));
        let (_, timing) = time_mode(1, references, || {
            let start = Instant::now();
            let result = checkpoints.replay("bench", trace);
            (result, start.elapsed())
        });
        segment_sweep.push(BenchSweepPoint {
            value: segments as u64,
            timing,
        });
    }

    let tune = if request.tune {
        Some(run_tune(trace, *session.config(), iterations)?)
    } else {
        None
    };

    Ok(BenchReport {
        workload: run.name.clone(),
        quick: session.quick(),
        backend: session.backend().to_owned(),
        references,
        environment: BenchEnvironment::capture(),
        result: per_ref_result,
        modes: vec![
            BenchMode {
                mode: "per_reference",
                iterations,
                timing: per_ref,
            },
            BenchMode {
                mode: "batched",
                iterations,
                timing: batched,
            },
            BenchMode {
                mode: "streamed",
                iterations,
                timing: streamed,
            },
            BenchMode {
                mode: "checkpoint_parallel",
                iterations,
                timing: parallel,
            },
        ],
        batch_sweep,
        segment_sweep,
        ratios: BenchRatios {
            batched_vs_per_reference: ratio(batched.refs_per_sec, per_ref.refs_per_sec),
            streamed_vs_per_reference: ratio(streamed.refs_per_sec, per_ref.refs_per_sec),
            checkpoint_parallel_vs_batched: ratio(parallel.refs_per_sec, batched.refs_per_sec),
        },
        tune,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_every_mode_and_results_agree() {
        let session = Session::builder().quick(true).build().unwrap();
        let request = BenchRequest {
            workload: "fir".to_owned(),
            iterations: 1,
            segments: 3,
            batch_sweep: vec![64, 4096],
            segment_sweep: vec![1, 2],
            tune: false,
        };
        let report = session.bench(&request).unwrap();
        assert_eq!(report.workload, "fir");
        assert!(report.quick);
        assert_eq!(report.backend, "column-cache");
        assert!(report.references > 0);
        assert_eq!(report.result.references, report.references);
        let modes: Vec<&str> = report.modes.iter().map(|m| m.mode).collect();
        assert_eq!(
            modes,
            [
                "per_reference",
                "batched",
                "streamed",
                "checkpoint_parallel"
            ]
        );
        for mode in &report.modes {
            assert!(
                mode.timing.refs_per_sec > 0.0,
                "{} must be timed",
                mode.mode
            );
        }
        assert_eq!(report.batch_sweep.len(), 2);
        assert_eq!(report.segment_sweep.len(), 2);
        assert!(report.ratios.batched_vs_per_reference > 0.0);
        assert!(report.environment.threads >= 1);
    }

    #[test]
    fn tune_mode_measures_every_fitness_datapath() {
        let session = Session::builder().quick(true).build().unwrap();
        let request = BenchRequest {
            workload: "fir".to_owned(),
            iterations: 1,
            segments: 2,
            batch_sweep: vec![],
            segment_sweep: vec![],
            tune: true,
        };
        let report = session.bench(&request).unwrap();
        let tune = report.tune.expect("tune section was requested");
        assert_eq!(tune.candidates, 48);
        assert_eq!(tune.geometries, 2);
        assert!(tune.distinct_candidates < tune.candidates);
        let pairs: Vec<(&str, &str)> = tune.modes.iter().map(|m| (m.mode, m.schedule)).collect();
        assert_eq!(
            pairs,
            [
                ("fresh", "serial"),
                ("fresh", "parallel"),
                ("pooled", "serial"),
                ("pooled", "parallel"),
                ("pooled_checkpoint", "serial"),
                ("pooled_checkpoint", "parallel"),
            ]
        );
        for mode in &tune.modes {
            assert!(
                mode.evals_per_sec > 0.0,
                "{}/{} must be timed",
                mode.mode,
                mode.schedule
            );
        }
        assert!(tune.ratios.pooled_vs_fresh > 0.0);
        assert!(tune.ratios.pooled_checkpoint_vs_fresh > 0.0);
        assert!(tune.ratios.parallel_vs_serial > 0.0);
    }

    #[test]
    fn bench_rejects_unknown_workloads() {
        let session = Session::builder().quick(true).build().unwrap();
        let request = BenchRequest {
            workload: "nope".to_owned(),
            ..BenchRequest::default()
        };
        let err = session.bench(&request).err().unwrap();
        assert!(err.to_string().contains("unknown workload 'nope'"));
    }
}
