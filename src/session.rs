//! The `Session` facade: one typed front door to the whole stack.
//!
//! Before this module, driving the workspace as a library meant reaching into five
//! crates: build a `SystemConfig` from `ccache-sim`, a `ReplayEngine` from
//! `ccache-core`, look workloads up in `ccache-workloads`, compile specs with
//! `ccache-exp` and tune with `ccache-opt`. A [`Session`] packages that wiring behind a
//! builder:
//!
//! ```
//! use column_caching::Session;
//!
//! let session = Session::builder().quick(true).observe(512).build()?;
//! let replayed = session.replay_corpus("fir")?;
//! let series = replayed.series.expect("observation was requested");
//! assert_eq!(series.total_references(), replayed.result.references);
//! # Ok::<(), column_caching::SessionError>(())
//! ```
//!
//! The session owns a [`BackendRegistry`] clone, so user backends registered on the
//! builder are replayable by name with the exact engine the built-ins use, and the
//! configured observation window is honoured by every replay the session runs —
//! including full experiment specs ([`Session::run_spec`]), where it surfaces as the
//! artefact's `time_series` blocks. The `ccache` CLI commands are thin clients of this
//! type.

use ccache_core::observe::{ReplayObserver, SeriesRecorder, TimeSeries};
use ccache_core::runner::CacheMapping;
use ccache_core::{CoreError, ReplayEngine, RunResult};
use ccache_exp::exec::{ExecOptions, ObserveOptions};
use ccache_exp::{Artefact, ExpError, ExperimentSpec, GeometrySpec, Plan};
use ccache_json::{Json, ToJson};
use ccache_opt::{OptError, TuneOutcome, TuneProgress, TuneRequest};
use ccache_sim::backend::MemoryBackend;
use ccache_sim::{BackendRegistry, SimError, SystemConfig};
use ccache_telemetry::Registry;
use ccache_trace::{SymbolTable, Trace};

/// Errors surfaced by the [`Session`] facade: either a bad request (unknown backend or
/// workload name) or a wrapped error from one of the underlying crates.
#[derive(Debug)]
pub enum SessionError {
    /// A name failed to resolve or a request was malformed.
    BadRequest(String),
    /// A simulator configuration or registry operation failed.
    Sim(SimError),
    /// A replay or experiment failed in the core layer.
    Core(CoreError),
    /// The experiment layer rejected a spec or failed a job.
    Exp(ExpError),
    /// The autotuner failed.
    Opt(OptError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadRequest(msg) => write!(f, "{msg}"),
            SessionError::Sim(e) => write!(f, "{e}"),
            SessionError::Core(e) => write!(f, "{e}"),
            SessionError::Exp(e) => write!(f, "{e}"),
            SessionError::Opt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::BadRequest(_) => None,
            SessionError::Sim(e) => Some(e),
            SessionError::Core(e) => Some(e),
            SessionError::Exp(e) => Some(e),
            SessionError::Opt(e) => Some(e),
        }
    }
}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> Self {
        SessionError::Sim(e)
    }
}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<ExpError> for SessionError {
    fn from(e: ExpError) -> Self {
        SessionError::Exp(e)
    }
}

impl From<OptError> for SessionError {
    fn from(e: OptError) -> Self {
        SessionError::Opt(e)
    }
}

/// A replay's outcome through a session: the statistics plus — when the session
/// observes — the windowed time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Replayed {
    /// The replay statistics (identical with observation on or off).
    pub result: RunResult,
    /// The windowed series, when the session was built with [`SessionBuilder::observe`].
    pub series: Option<TimeSeries>,
}

/// Configures and validates a [`Session`].
///
/// Defaults: the paper's Figure 4 geometry ([`GeometrySpec::default`]), the
/// column-cache backend, full-scale workloads, no observation, the built-in backend
/// registry.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    geometry: GeometrySpec,
    backend: String,
    quick: bool,
    observe: Option<u64>,
    registry: BackendRegistry,
    telemetry: Option<Registry>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            geometry: GeometrySpec::default(),
            backend: "column-cache".to_owned(),
            quick: false,
            observe: None,
            registry: BackendRegistry::builtin(),
            telemetry: None,
        }
    }
}

impl SessionBuilder {
    /// Starts a builder with the defaults above.
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Sets the cache geometry (capacity, columns, line, page, TLB, replacement,
    /// latency preset).
    pub fn geometry(mut self, geometry: GeometrySpec) -> Self {
        self.geometry = geometry;
        self
    }

    /// Selects the backend the session replays on, by any registered spelling
    /// (built-in or user-registered). Validated at [`SessionBuilder::build`].
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.backend = name.into();
        self
    }

    /// Builds workloads at the reduced quick scale (smoke tests).
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Attaches a windowed observer to every replay the session runs: one
    /// [`WindowSample`](ccache_core::observe::WindowSample) per `window` references.
    pub fn observe(mut self, window: u64) -> Self {
        self.observe = Some(window.max(1));
        self
    }

    /// Routes the session's telemetry (engine, tuner and executor metrics) into
    /// `registry` instead of the process-wide [`Registry::global`]. Telemetry never
    /// changes results, artefact bytes or [`Session::spec_key`].
    pub fn telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Registers a user backend on the session's registry under `name` plus `aliases`.
    ///
    /// # Errors
    ///
    /// Fails if a name collides with an already registered backend.
    pub fn register_backend<F>(
        mut self,
        name: &str,
        aliases: &[&str],
        summary: &str,
        factory: F,
    ) -> Result<Self, SessionError>
    where
        F: Fn(SystemConfig) -> Result<Box<dyn MemoryBackend>, SimError> + Send + Sync + 'static,
    {
        self.registry.register(name, aliases, summary, factory)?;
        Ok(self)
    }

    /// Validates the configuration and produces the session.
    ///
    /// # Errors
    ///
    /// Fails for invalid geometries and for backend names the registry cannot resolve
    /// (the message lists the accepted names, derived from the registry).
    pub fn build(self) -> Result<Session, SessionError> {
        let config = self.geometry.system_config()?;
        let backend = match self.registry.resolve(&self.backend) {
            Some(entry) => entry.name().to_owned(),
            None => {
                return Err(SessionError::BadRequest(format!(
                    "unknown backend '{}' (expected {})",
                    self.backend,
                    self.registry.expected_single()
                )))
            }
        };
        Ok(Session {
            geometry: self.geometry,
            config,
            backend,
            quick: self.quick,
            observe: self.observe,
            registry: self.registry,
            telemetry: self.telemetry.unwrap_or_else(Registry::global),
        })
    }
}

/// A configured driving session: the library's single entry point for replays,
/// experiment specs and tuning runs. Build one with [`Session::builder`].
#[derive(Debug, Clone)]
pub struct Session {
    geometry: GeometrySpec,
    config: SystemConfig,
    backend: String,
    quick: bool,
    observe: Option<u64>,
    registry: BackendRegistry,
    telemetry: Registry,
}

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The session's backend registry (built-ins plus any user registrations).
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The cache geometry the session replays under.
    pub fn geometry(&self) -> &GeometrySpec {
        &self.geometry
    }

    /// The validated simulator configuration derived from the geometry.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The canonical name of the session's backend.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Whether workloads are built at the reduced quick scale.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// The observation window, when the session observes.
    pub fn observe_window(&self) -> Option<u64> {
        self.observe
    }

    /// The telemetry registry the session reports into (the process-wide global unless
    /// [`SessionBuilder::telemetry`] installed a private one).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// A fresh [`ReplayEngine`] over the session's backend and geometry — the escape
    /// hatch for snapshot/reset-style driving beyond what the facade offers.
    ///
    /// # Errors
    ///
    /// Fails if the backend factory rejects the configuration.
    pub fn engine(&self) -> Result<ReplayEngine, SessionError> {
        let mut engine = ReplayEngine::from_registry(&self.registry, &self.backend, self.config)?;
        engine.set_telemetry(&self.telemetry);
        Ok(engine)
    }

    /// Replays a trace on a freshly built backend with no mapping programmed.
    ///
    /// # Errors
    ///
    /// Fails if the backend cannot be built.
    pub fn replay(&self, name: &str, trace: &Trace) -> Result<Replayed, SessionError> {
        self.replay_mapped(name, trace, &CacheMapping::new())
    }

    /// Replays a trace with a cache mapping programmed first — the paper's programming
    /// model in one call: partition, replay, read statistics (and, when observing, the
    /// windowed series).
    ///
    /// # Errors
    ///
    /// Fails if the backend cannot be built or the mapping is invalid for it.
    pub fn replay_mapped(
        &self,
        name: &str,
        trace: &Trace,
        mapping: &CacheMapping,
    ) -> Result<Replayed, SessionError> {
        let mut engine = self.engine()?;
        engine.apply(mapping)?;
        Ok(match self.observe {
            Some(window) => {
                let mut recorder = SeriesRecorder::new(window);
                let result = engine.replay_observed(name, trace, window, &mut recorder);
                Replayed {
                    result,
                    series: Some(recorder.into_series()),
                }
            }
            None => Replayed {
                result: engine.replay(name, trace),
                series: None,
            },
        })
    }

    /// Replays a trace with a caller-provided streaming observer (the session's own
    /// observation setting is ignored for this call).
    ///
    /// # Errors
    ///
    /// Fails if the backend cannot be built.
    pub fn replay_with(
        &self,
        name: &str,
        trace: &Trace,
        window: u64,
        observer: &mut dyn ReplayObserver,
    ) -> Result<RunResult, SessionError> {
        let mut engine = self.engine()?;
        Ok(engine.replay_observed(name, trace, window, observer))
    }

    /// Runs a named corpus workload (at the session's scale) and replays its trace.
    ///
    /// # Errors
    ///
    /// Fails for unknown corpus names; the message lists the accepted ones.
    pub fn replay_corpus(&self, name: &str) -> Result<Replayed, SessionError> {
        let run = ccache_workloads::corpus(name, self.quick).ok_or_else(|| {
            SessionError::BadRequest(format!(
                "unknown workload '{name}' (expected one of: {})",
                ccache_workloads::CORPUS_NAMES.join(", ")
            ))
        })?;
        self.replay(&run.name, &run.trace)
    }

    /// Runs a full experiment spec through the plan → execute → package pipeline,
    /// honouring the session's scale and observation settings.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution failures.
    pub fn run_spec(&self, spec: &ExperimentSpec) -> Result<Artefact, SessionError> {
        self.run_plan(spec, ccache_exp::plan(spec))
    }

    /// As [`Session::run_spec`], executing an already-computed plan of `spec` — for
    /// callers that inspect or report plan statistics first (e.g. `ccache run`'s
    /// stderr narration) without paying for a second grid expansion.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn run_plan(&self, spec: &ExperimentSpec, plan: Plan) -> Result<Artefact, SessionError> {
        let outcomes = ccache_exp::execute(&plan, &self.exec_options())?;
        Ok(Artefact::new(spec.clone(), self.quick, plan, outcomes))
    }

    /// The canonical memo key for running `spec` on this session.
    ///
    /// The key is a compact JSON document combining the session knobs that change
    /// artefact bytes (`quick` scale and observation window; telemetry routing is
    /// deliberately excluded because it never changes bytes) with the spec's canonical
    /// JSON form and the
    /// planner's deduplicated per-job canonical keys ([`JobUnit::key`](
    /// ccache_exp::JobUnit::key)). Whenever two `(session, spec)` pairs agree on
    /// `spec_key`, [`Session::run_spec`] produces byte-identical artefact text for
    /// both — the contract the `ccache-serve` content-addressed result store is
    /// built on.
    pub fn spec_key(&self, spec: &ExperimentSpec) -> String {
        let plan = ccache_exp::plan(spec);
        Json::obj([
            ("quick", self.quick.to_json()),
            ("observe", self.observe.to_json()),
            ("spec", spec.to_json()),
            (
                "jobs",
                Json::arr(plan.jobs.iter().map(|job| Json::Str(job.key()))),
            ),
        ])
        .compact()
    }

    /// Runs `spec` and returns `(spec_key, artefact_bytes)`: the canonical memo key
    /// ([`Session::spec_key`]) and the pretty-rendered artefact JSON — the exact
    /// bytes `ccache serve` memoizes and replies with. The serve stress tests use
    /// this as their single-threaded oracle.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution failures.
    pub fn run_spec_bytes(&self, spec: &ExperimentSpec) -> Result<(String, String), SessionError> {
        let key = self.spec_key(spec);
        let artefact = self.run_spec(spec)?;
        Ok((key, artefact.to_json().pretty()))
    }

    /// As [`Session::run_spec`], parsing the spec from JSON text first.
    ///
    /// # Errors
    ///
    /// Fails on JSON syntax errors, structural spec problems and execution failures.
    pub fn run_spec_str(&self, text: &str) -> Result<Artefact, SessionError> {
        self.run_spec(&ExperimentSpec::parse_str(text)?)
    }

    /// The execution options the session's settings compile to.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            quick: self.quick,
            observe: self.observe.map(|window| ObserveOptions { window }),
            telemetry: Some(self.telemetry.clone()),
        }
    }

    /// Measures replay throughput for a corpus workload across every engine datapath —
    /// per-reference, batched, streamed and checkpoint-parallel — plus batch-size and
    /// segment-count scaling curves. See [`crate::bench`] for what a
    /// [`BenchReport`](crate::bench::BenchReport) contains and which of its numbers are
    /// machine-independent; the `ccache bench` CLI command is a thin client of this
    /// method.
    ///
    /// # Errors
    ///
    /// Fails for unknown workload names, if the backend cannot be built, or if the
    /// harness's self-check — every mode must produce an identical
    /// [`RunResult`] — fails.
    pub fn bench(
        &self,
        request: &crate::bench::BenchRequest,
    ) -> Result<crate::bench::BenchReport, SessionError> {
        crate::bench::run(self, request)
    }

    /// Tunes cache geometry and column assignments for a workload trace
    /// (see [`ccache_opt::tune`]). The request is taken as-is — its own `template`
    /// geometry drives the search; use [`Session::tune_corpus`] to tune under the
    /// session's configured geometry.
    ///
    /// # Errors
    ///
    /// Propagates search failures.
    pub fn tune(
        &self,
        trace: &Trace,
        symbols: &SymbolTable,
        request: &TuneRequest,
    ) -> Result<TuneOutcome, SessionError> {
        Ok(ccache_opt::tune_observed(
            trace,
            symbols,
            request,
            &self.telemetry,
            None,
        )?)
    }

    /// As [`Session::tune`], additionally streaming each completed generation to
    /// `progress` as it happens — the convergence log on the returned outcome is
    /// unchanged, and observation never steers the search.
    ///
    /// # Errors
    ///
    /// Propagates search failures.
    pub fn tune_with_progress(
        &self,
        trace: &Trace,
        symbols: &SymbolTable,
        request: &TuneRequest,
        progress: &mut dyn TuneProgress,
    ) -> Result<TuneOutcome, SessionError> {
        Ok(ccache_opt::tune_observed(
            trace,
            symbols,
            request,
            &self.telemetry,
            Some(progress),
        )?)
    }

    /// Tunes a named corpus workload (at the session's scale) with the **session's
    /// geometry** as the search template — the request's `template` field is replaced
    /// by the session's validated configuration.
    ///
    /// # Errors
    ///
    /// Fails for unknown corpus names and propagates search failures.
    pub fn tune_corpus(
        &self,
        name: &str,
        request: &TuneRequest,
    ) -> Result<TuneOutcome, SessionError> {
        let run = ccache_workloads::corpus(name, self.quick).ok_or_else(|| {
            SessionError::BadRequest(format!(
                "unknown workload '{name}' (expected one of: {})",
                ccache_workloads::CORPUS_NAMES.join(", ")
            ))
        })?;
        let request = TuneRequest {
            template: self.config,
            ..request.clone()
        };
        self.tune(&run.trace, &run.symbols, &request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccache_sim::backend::IdealScratchpad;

    #[test]
    fn default_session_replays_a_corpus_workload() {
        let session = Session::builder().quick(true).build().unwrap();
        assert_eq!(session.backend(), "column-cache");
        assert!(!session.registry().names().is_empty());
        let replayed = session.replay_corpus("fir").unwrap();
        assert!(replayed.result.references > 0);
        assert!(replayed.series.is_none());
    }

    #[test]
    fn observed_sessions_attach_series_everywhere() {
        let plain = Session::builder().quick(true).build().unwrap();
        let observing = Session::builder().quick(true).observe(256).build().unwrap();
        let a = plain.replay_corpus("fir").unwrap();
        let b = observing.replay_corpus("fir").unwrap();
        assert_eq!(a.result, b.result, "observation must not change statistics");
        let series = b.series.unwrap();
        assert_eq!(series.window, 256);
        assert_eq!(series.total_references(), a.result.references);
    }

    #[test]
    fn unknown_names_fail_with_derived_expected_lists() {
        let err = Session::builder()
            .backend("victim-cache")
            .build()
            .err()
            .unwrap();
        assert_eq!(
            err.to_string(),
            "unknown backend 'victim-cache' (expected column, set-assoc or ideal)"
        );
        let session = Session::builder().quick(true).build().unwrap();
        let err = session.replay_corpus("nope").err().unwrap();
        assert!(err.to_string().contains("unknown workload 'nope'"));
    }

    #[test]
    fn user_backends_are_replayable_by_name() {
        let session = Session::builder()
            .quick(true)
            .register_backend("my-ideal", &[], "user-registered ideal", |cfg| {
                Ok(Box::new(IdealScratchpad::new(cfg)?))
            })
            .unwrap()
            .backend("my-ideal")
            .build()
            .unwrap();
        assert_eq!(session.backend(), "my-ideal");
        let replayed = session.replay_corpus("fir").unwrap();
        // the ideal scratchpad never misses
        assert_eq!(replayed.result.misses, 0);
        assert!(session.registry().expected_single().contains("my-ideal"));
    }

    #[test]
    fn tune_corpus_searches_under_the_session_geometry() {
        use ccache_opt::{GeometrySearch, StrategyKind};
        let geometry = ccache_exp::GeometrySpec {
            capacity: 4096,
            columns: 8,
            ..ccache_exp::GeometrySpec::default()
        };
        let session = Session::builder()
            .quick(true)
            .geometry(geometry)
            .build()
            .unwrap();
        let request = ccache_opt::TuneRequest {
            geometry: GeometrySearch::fixed(),
            strategy: StrategyKind::HillClimb,
            budget: 4,
            ..ccache_opt::TuneRequest::default()
        };
        let outcome = session.tune_corpus("fir", &request).unwrap();
        // the session's geometry, not the request's default template, drove the search
        assert_eq!(outcome.best_config.capacity_bytes, 4096);
        assert_eq!(outcome.best_config.columns, 8);
    }

    #[test]
    fn spec_keys_address_byte_identical_artefacts() {
        let spec = ExperimentSpec::parse_str(
            r#"{"name": "k", "replay": [{"workloads": ["fir"], "policies": ["shared"]}]}"#,
        )
        .unwrap();
        let (k1, b1) = Session::builder()
            .quick(true)
            .build()
            .unwrap()
            .run_spec_bytes(&spec)
            .unwrap();
        let (k2, b2) = Session::builder()
            .quick(true)
            .build()
            .unwrap()
            .run_spec_bytes(&spec)
            .unwrap();
        assert_eq!(k1, k2, "equal sessions must agree on the memo key");
        assert_eq!(b1, b2, "equal keys must address byte-identical artefacts");
        // Knobs that change artefact bytes must change the key too.
        let observing = Session::builder().quick(true).observe(256).build().unwrap();
        assert_ne!(observing.spec_key(&spec), k1);
        let full = Session::builder().quick(false).build().unwrap();
        assert_ne!(full.spec_key(&spec), k1);
    }

    #[test]
    fn sessions_run_experiment_specs_with_observation() {
        let spec = r#"{"name": "t", "replay": [{"workloads": ["fir"],
                       "policies": ["shared", "heuristic"], "label": "policy"}]}"#;
        let plain = Session::builder().quick(true).build().unwrap();
        let observing = Session::builder().quick(true).observe(512).build().unwrap();
        let a = plain.run_spec_str(spec).unwrap();
        let b = observing.run_spec_str(spec).unwrap();
        assert_eq!(a.outcomes.len(), 2);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            let (
                ccache_exp::JobOutcome::Replay {
                    result: rx,
                    series: sx,
                    ..
                },
                ccache_exp::JobOutcome::Replay {
                    result: ry,
                    series: sy,
                    ..
                },
            ) = (x, y)
            else {
                panic!("expected replay outcomes");
            };
            assert_eq!(rx, ry);
            assert!(sx.is_none());
            let series = sy.as_ref().unwrap();
            assert_eq!(series.total_references(), ry.references);
        }
    }
}
