//! MPEG partitioning: the Figure 4 experiment end to end.
//!
//! Sweeps the scratchpad/cache split of a 2 KB, 4-column on-chip memory for the three MPEG
//! routines (`dequant`, `plus`, `idct`) and the combined application, then compares every
//! static partition against a dynamically remapped column cache.
//!
//! Run with: `cargo run --release --example mpeg_partitioning`

use column_caching::core::dynamic::{run_dynamic, Figure4dResult};
use column_caching::core::report::{figure4d_table, partition_table};
use column_caching::prelude::*;
use column_caching::workloads::mpeg::{run_phases, MpegConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mpeg = MpegConfig::default();
    let config = PartitionConfig::default();
    println!(
        "on-chip memory: {} bytes, {} columns, {}-byte lines\n",
        config.capacity_bytes, config.columns, config.line_size
    );

    // Figures 4(a)-(c): per-routine sweeps.
    for run in [run_dequant(&mpeg), run_plus(&mpeg), run_idct(&mpeg)] {
        let sweep = partition_sweep(&run, &config)?;
        println!("{}", partition_table(&sweep));
        println!(
            "-> best organisation for {}: {} cache columns / {} scratchpad columns\n",
            sweep.name,
            sweep.best().cache_columns,
            sweep.best().scratchpad_columns
        );
    }

    // Figure 4(d): the combined application, static partitions vs. the column cache.
    let combined = run_combined(&mpeg);
    let static_sweep = partition_sweep(&combined, &config)?;
    println!("{}", partition_table(&static_sweep));

    let (phases, symbols) = run_phases(&mpeg);
    let dynamic = run_dynamic(&phases, &symbols, &config)?;
    let fig4d = Figure4dResult {
        static_cycles: static_sweep
            .points
            .iter()
            .map(|p| (p.cache_columns, p.cycles))
            .collect(),
        column_cache_cycles: dynamic.cycles,
        column_cache_control_cycles: dynamic.control_cycles,
    };
    println!("{}", figure4d_table(&fig4d));
    for phase in &dynamic.phases {
        println!(
            "  phase {:<8}: {:>8} cycles, layout cost W = {}, {} scratchpad-like columns",
            phase.name,
            phase.result.total_cycles(),
            phase.layout_cost,
            phase.preloaded_columns
        );
    }
    Ok(())
}
