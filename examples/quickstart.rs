//! Quickstart: partition a cache between a hot lookup table and a streaming buffer.
//!
//! A tiny embedded loop keeps returning to a small lookup table while also sweeping a
//! large input stream. In a shared cache the stream keeps evicting the table; a column
//! cache confines the stream to one column so the table stays resident.
//!
//! Run with: `cargo run --example quickstart`

use column_caching::prelude::*;
use column_caching::trace::synth::sequential_scan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build a reference stream: (hot table scan, big stream, hot table scan) x 4 ----
    let table_base = 0x0u64;
    let table_bytes = 512; // one column's worth
    let stream_base = 0x10_0000u64;
    let stream_bytes = 4 * 1024; // larger than the 2 KiB cache, so it evicts everything

    let mut trace = Trace::new();
    for _ in 0..16 {
        // the hot table is consulted heavily...
        trace.extend_from(&sequential_scan(table_base, table_bytes, 8, 4, 8, None));
        // ...then a buffer larger than the cache streams through
        trace.extend_from(&sequential_scan(stream_base, stream_bytes, 32, 4, 1, None));
    }
    println!("reference stream: {} accesses", trace.len());

    let config = SystemConfig {
        page_size: 256,
        ..SystemConfig::default()
    };
    println!(
        "cache: {} bytes, {} columns of {} bytes, {}-byte lines",
        config.cache.capacity_bytes(),
        config.cache.columns(),
        config.cache.column_bytes(),
        config.cache.line_size()
    );

    // --- 1. Shared cache: every access may replace into any column -----------------------
    let shared = run_trace("shared", config, &CacheMapping::new(), &trace)?;

    // --- 2. Column cache: the stream is confined to column 3 -----------------------------
    let mut mapping = CacheMapping::new();
    mapping.map(
        stream_base,
        stream_bytes,
        RegionMapping::Columns {
            mask: ColumnMask::single(3),
        },
    );
    let partitioned = run_trace("partitioned", config, &mapping, &trace)?;

    // --- 3. Column cache with the table mapped as scratchpad -----------------------------
    let mut sp_mapping = CacheMapping::new();
    sp_mapping.map(
        stream_base,
        stream_bytes,
        RegionMapping::Columns {
            mask: ColumnMask::single(3),
        },
    );
    sp_mapping.map(
        table_base,
        table_bytes,
        RegionMapping::Exclusive {
            mask: ColumnMask::single(0),
            preload: true,
        },
    );
    let scratchpad = run_trace("scratchpad", config, &sp_mapping, &trace)?;

    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>8}",
        "configuration", "cycles", "hits", "misses", "CPI"
    );
    for r in [&shared, &partitioned, &scratchpad] {
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>8.3}",
            r.name,
            r.total_cycles(),
            r.hits,
            r.misses,
            r.cpi()
        );
    }
    println!();
    println!(
        "column caching removes {} misses ({}% of cycles) relative to the shared cache",
        shared.misses - scratchpad.misses,
        100 * (shared.total_cycles() - scratchpad.total_cycles()) / shared.total_cycles()
    );
    Ok(())
}
