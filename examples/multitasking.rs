//! Multitasking predictability: the Figure 5 experiment end to end.
//!
//! Three gzip-like compression jobs run round-robin on one processor. The example sweeps
//! the context-switch quantum and reports job A's CPI for a standard cache and for a
//! mapped column cache (job A owns half the columns), at 16 KiB and 128 KiB.
//!
//! Run with: `cargo run --release --example multitasking`

use column_caching::core::multitask::{quantum_sweep, MultitaskConfig, SharingPolicy};
use column_caching::core::report::quantum_table;
use column_caching::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three independent gzip jobs with disjoint address spaces and different inputs.
    let gzip = GzipConfig {
        input_len: 8 * 1024,
        ..GzipConfig::default()
    };
    let jobs: Vec<Job> = (0..3)
        .map(|j| {
            let run = run_gzip_job(
                &gzip.with_seed(41 + j as u64),
                0x100_0000 * (j as u64 + 1),
                &format!("gzip-{}", (b'A' + j) as char),
            );
            Job::new(run.name.clone(), run.trace)
        })
        .collect();
    for job in &jobs {
        println!("{}: {} references", job.name, job.trace.len());
    }
    println!();

    // A reduced quantum sweep keeps the example quick; the bench binary runs the full one.
    let quanta: Vec<usize> = (0..=8).map(|p| 4usize.pow(p)).collect();
    let mut series = Vec::new();
    for (label, config) in [
        ("gzip.16k", MultitaskConfig::cache_16k()),
        ("gzip.128k", MultitaskConfig::cache_128k()),
    ] {
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Shared,
            label,
        )?);
        series.push(quantum_sweep(
            &jobs,
            &quanta,
            &config,
            SharingPolicy::Mapped,
            &format!("{label} mapped"),
        )?);
    }
    println!("{}", quantum_table(&series));
    println!(
        "mapping job A to its own columns cuts its CPI variation from {:.3} to {:.3} at 16 KiB",
        series[0].variation(),
        series[1].variation()
    );
    Ok(())
}
