//! Dynamic repartitioning: remapping tints between program phases.
//!
//! Demonstrates the software-control interface directly: two phases share a cache, and the
//! tint table is reprogrammed between them. Phase 1 streams through a large input while
//! keeping a FIR coefficient table hot; phase 2 does the same with a histogram table. Each
//! phase wants its hot table protected — and because remapping a tint is a single table
//! write, the protection can follow the program.
//!
//! Run with: `cargo run --example dynamic_remap`

use column_caching::layout::{
    assign_columns, conflict_graph_from_trace, LayoutOptions, WeightOptions,
};
use column_caching::prelude::*;
use column_caching::workloads::kernels::{run_fir, run_histogram, FirConfig, HistogramConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fir = run_fir(&FirConfig::default());
    let hist = run_histogram(&HistogramConfig::default());
    println!(
        "phase 1 (fir): {} refs over {} variables; phase 2 (histogram): {} refs over {} variables",
        fir.trace.len(),
        fir.symbols.len(),
        hist.trace.len(),
        hist.symbols.len()
    );

    // Compute each phase's own column assignment from its conflict graph.
    let opts = WeightOptions::default();
    let layout = LayoutOptions::new(4, 512);
    for run in [&fir, &hist] {
        let (graph, _units) = conflict_graph_from_trace(&run.trace, &run.symbols, &opts);
        let assignment = assign_columns(&graph, &layout)?;
        println!("\nlayout for {} (cost W = {}):", run.name, assignment.cost);
        for region in run.symbols.iter() {
            println!(
                "  {:<14} {:>6} bytes -> columns {:?}",
                region.name,
                region.size,
                assignment.columns_of(region.id)
            );
        }
    }

    // Now run both phases back-to-back on ONE memory system, re-tinting in between.
    let mut system = MemorySystem::with_default_cache();
    let mut total = 0u64;
    for (i, run) in [&fir, &hist].iter().enumerate() {
        // give this phase's hottest variable its own column, everything else the rest
        let ranked = column_caching::core::runner::rank_by_density(&run.trace, &run.symbols);
        let (hot_var, ..) = ranked[0];
        let hot = run.symbols.region(hot_var).unwrap();
        let tint = Tint(10 + i as u32);
        system.make_tint_exclusive(tint, ColumnMask::single(0))?;
        system.tint_range(hot.base..hot.base + hot.size, tint);
        println!(
            "\nphase {}: variable `{}` re-tinted to {} (exclusive column 0), {} page-table entries touched",
            i + 1,
            hot.name,
            tint,
            system.page_table().configured_pages()
        );
        let cycles = system.run(run.trace.iter().map(|e| (e.addr, e.is_write())));
        total += cycles;
        println!(
            "phase {} finished: {} cycles, hit rate {:.1}%",
            i + 1,
            cycles,
            system.cache_stats().hit_rate() * 100.0
        );
    }
    println!(
        "\ntotal: {} cycles; tint table remaps performed: {}, TLB entries flushed by re-tinting: {}",
        total,
        system.tints().remaps,
        system.stats().tlb_flushes
    );
    Ok(())
}
